package comm

import (
	"context"
	"fmt"
	"time"

	"mirabel/internal/flexoffer"
)

// Client is the typed RPC surface of the node fabric: one method per
// message exchange, hiding envelope construction and decoding from
// callers. All traffic outside the comm and core dispatch layers goes
// through a Client; hand-rolled NewEnvelope/Decode call sites are an
// anti-pattern at the application level.
//
// A Client is safe for concurrent use if its Transport is.
type Client struct {
	from    string
	t       Transport
	timeout time.Duration
}

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithRequestTimeout sets the per-request timeout applied when the
// caller's context carries no deadline (default DefaultTimeout).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// NewClient returns a typed client speaking as from over t.
func NewClient(from string, t Transport, opts ...ClientOption) *Client {
	c := &Client{from: from, t: t, timeout: DefaultTimeout}
	for _, o := range opts {
		o(c)
	}
	return c
}

// From returns the client's endpoint identity.
func (c *Client) From() string { return c.from }

// withDeadline applies the client's default timeout when ctx has none.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// call performs one typed request/reply exchange.
func (c *Client) call(ctx context.Context, to string, req MsgType, body any, want MsgType, out any) error {
	env, err := NewEnvelope(req, c.from, to, body)
	if err != nil {
		return err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	reply, err := c.t.Request(ctx, to, env)
	if err != nil {
		return err
	}
	if out == nil {
		if reply.Type != want {
			return fmt.Errorf("comm: %s reply is %s, want %s", req, reply.Type, want)
		}
		return nil
	}
	return reply.Decode(want, out)
}

// SubmitOffer submits a flex-offer to a BRP/TSO endpoint and returns
// its negotiation decision.
func (c *Client) SubmitOffer(ctx context.Context, to string, offer *flexoffer.FlexOffer) (FlexOfferDecision, error) {
	var d FlexOfferDecision
	err := c.call(ctx, to, MsgFlexOfferSubmit, FlexOfferSubmit{Offer: offer}, MsgFlexOfferDecision, &d)
	return d, err
}

// QueryForecast asks an endpoint for its forecast of energyType over
// the next horizon slots.
func (c *Client) QueryForecast(ctx context.Context, to, energyType string, horizon int) (ForecastReply, error) {
	var r ForecastReply
	err := c.call(ctx, to, MsgForecastRequest, ForecastRequest{EnergyType: energyType, Horizon: horizon}, MsgForecastReply, &r)
	return r, err
}

// QuerySeriesForecast asks an endpoint for the forecast of one
// maintained (actor, energy type) series in its forecast registry.
func (c *Client) QuerySeriesForecast(ctx context.Context, to, actor, energyType string, horizon int) (ForecastReply, error) {
	var r ForecastReply
	err := c.call(ctx, to, MsgForecastRequest, ForecastRequest{Actor: actor, EnergyType: energyType, Horizon: horizon}, MsgForecastReply, &r)
	return r, err
}

// NotifySchedules delivers scheduled instantiations to their owner.
// Fire-and-forget: delivery is asynchronous on the Bus transport.
func (c *Client) NotifySchedules(ctx context.Context, to string, schedules []*flexoffer.Schedule) error {
	env, err := NewEnvelope(MsgScheduleNotify, c.from, to, ScheduleNotify{Schedules: schedules})
	if err != nil {
		return err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	return c.t.Send(ctx, to, env)
}

// ReportMeasurement reports a metered value upstream. Fire-and-forget.
func (c *Client) ReportMeasurement(ctx context.Context, to string, m MeasurementReport) error {
	env, err := NewEnvelope(MsgMeasurementReport, c.from, to, m)
	if err != nil {
		return err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	return c.t.Send(ctx, to, env)
}

// ReportMeasurements reports a batch of metered values upstream in one
// message; the receiver stores them as one group commit.
// Fire-and-forget.
func (c *Client) ReportMeasurements(ctx context.Context, to string, ms []MeasurementReport) error {
	if len(ms) == 0 {
		return nil
	}
	env, err := NewEnvelope(MsgMeasurementBatch, c.from, to, MeasurementBatch{Reports: ms})
	if err != nil {
		return err
	}
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	return c.t.Send(ctx, to, env)
}

// ReportMeasurementsAcked reports a batch of metered values upstream
// and waits for the receiver's ack (the handler has journaled or stored
// the batch when the reply arrives). Callers that must prove durability
// — the chaos sim's zero-acked-loss check — use this; fire-and-forget
// paths keep ReportMeasurements.
func (c *Client) ReportMeasurementsAcked(ctx context.Context, to string, ms []MeasurementReport) error {
	if len(ms) == 0 {
		return nil
	}
	return c.call(ctx, to, MsgMeasurementBatch, MeasurementBatch{Reports: ms}, MsgPong, nil)
}

// Ping checks an endpoint's liveness.
func (c *Client) Ping(ctx context.Context, to string) error {
	return c.call(ctx, to, MsgPing, nil, MsgPong, nil)
}
