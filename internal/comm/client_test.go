package comm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
)

// echoNode registers a minimal BRP-like endpoint on the bus: accepts
// offers, answers pings and forecast queries, counts notifications.
func echoNode(bus *Bus, name string) *atomic.Int32 {
	var notified atomic.Int32
	mux := NewMux()
	mux.Handle(MsgFlexOfferSubmit, func(ctx context.Context, env Envelope) (*Envelope, error) {
		var body FlexOfferSubmit
		if err := env.Decode(MsgFlexOfferSubmit, &body); err != nil {
			return nil, err
		}
		reply, err := NewEnvelope(MsgFlexOfferDecision, name, env.From, FlexOfferDecision{
			OfferID: body.Offer.ID, Accept: true, PremiumEUR: 0.02,
		})
		return &reply, err
	})
	mux.Handle(MsgForecastRequest, func(ctx context.Context, env Envelope) (*Envelope, error) {
		var req ForecastRequest
		if err := env.Decode(MsgForecastRequest, &req); err != nil {
			return nil, err
		}
		reply, err := NewEnvelope(MsgForecastReply, name, env.From, ForecastReply{
			EnergyType: req.EnergyType, Values: make([]float64, req.Horizon),
		})
		return &reply, err
	})
	mux.Handle(MsgPing, func(ctx context.Context, env Envelope) (*Envelope, error) {
		reply, err := NewEnvelope(MsgPong, name, env.From, nil)
		return &reply, err
	})
	mux.Handle(MsgScheduleNotify, func(ctx context.Context, env Envelope) (*Envelope, error) {
		notified.Add(1)
		return nil, nil
	})
	mux.Handle(MsgMeasurementReport, func(ctx context.Context, env Envelope) (*Envelope, error) {
		notified.Add(1)
		return nil, nil
	})
	bus.Register(name, mux.Serve)
	return &notified
}

func TestClientTypedRoundtrips(t *testing.T) {
	ctx := context.Background()
	bus := NewBus()
	notified := echoNode(bus, "brp1")
	c := NewClient("p1", bus)

	offer := &flexoffer.FlexOffer{ID: 9, EarliestStart: 4, LatestStart: 8,
		Profile: []flexoffer.Slice{{EnergyMin: 0, EnergyMax: 2}}}
	d, err := c.SubmitOffer(ctx, "brp1", offer)
	if err != nil || !d.Accept || d.OfferID != 9 {
		t.Fatalf("SubmitOffer = %+v, %v", d, err)
	}
	fc, err := c.QueryForecast(ctx, "brp1", "demand", 12)
	if err != nil || len(fc.Values) != 12 || fc.EnergyType != "demand" {
		t.Fatalf("QueryForecast = %+v, %v", fc, err)
	}
	if err := c.Ping(ctx, "brp1"); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.NotifySchedules(ctx, "brp1", []*flexoffer.Schedule{{OfferID: 9, Start: 4, Energy: []float64{1}}}); err != nil {
		t.Fatalf("NotifySchedules: %v", err)
	}
	if err := c.ReportMeasurement(ctx, "brp1", MeasurementReport{Actor: "p1", Slot: 1, KWh: 0.5}); err != nil {
		t.Fatalf("ReportMeasurement: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for notified.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if notified.Load() != 2 {
		t.Errorf("fire-and-forget deliveries = %d, want 2", notified.Load())
	}
}

func TestClientUnreachableThroughBothTransports(t *testing.T) {
	ctx := context.Background()
	// Bus: unregistered destination.
	busClient := NewClient("p1", NewBus())
	if err := busClient.Ping(ctx, "ghost"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("bus err = %v, want ErrUnreachable", err)
	}
	// TCP: no route configured.
	tcp := NewTCPClient("p1")
	defer tcp.Close()
	tcpClient := NewClient("p1", tcp)
	if err := tcpClient.Ping(ctx, "ghost"); !errors.Is(err, ErrUnreachable) {
		t.Errorf("tcp err = %v, want ErrUnreachable", err)
	}
}

func TestClientPingRejectsWrongReply(t *testing.T) {
	bus := NewBus()
	bus.Register("weird", func(ctx context.Context, env Envelope) (*Envelope, error) {
		reply, err := NewEnvelope(MsgForecastReply, "weird", env.From, ForecastReply{})
		return &reply, err
	})
	c := NewClient("p1", bus)
	if err := c.Ping(context.Background(), "weird"); err == nil {
		t.Error("wrong reply type accepted")
	}
}

func TestMuxDispatchAndFallback(t *testing.T) {
	ctx := context.Background()
	mux := NewMux()
	mux.Handle(MsgPing, func(ctx context.Context, env Envelope) (*Envelope, error) {
		reply, err := NewEnvelope(MsgPong, "m", env.From, nil)
		return &reply, err
	})
	if reply, err := mux.Serve(ctx, Envelope{Type: MsgPing, From: "x"}); err != nil || reply.Type != MsgPong {
		t.Fatalf("dispatch = %+v, %v", reply, err)
	}
	if _, err := mux.Serve(ctx, Envelope{Type: MsgError}); !errors.Is(err, ErrNoHandler) {
		t.Errorf("unregistered type err = %v, want ErrNoHandler", err)
	}
	mux.HandleFallback(func(ctx context.Context, env Envelope) (*Envelope, error) {
		return nil, fmt.Errorf("fallback saw %s", env.Type)
	})
	if _, err := mux.Serve(ctx, Envelope{Type: MsgError}); err == nil || !strings.Contains(err.Error(), "fallback") {
		t.Errorf("fallback not used: %v", err)
	}
	if got := len(mux.Types()); got != 1 {
		t.Errorf("Types() = %d entries", got)
	}
}

func TestRecoverMiddleware(t *testing.T) {
	h := Chain(func(context.Context, Envelope) (*Envelope, error) {
		panic("boom")
	}, Recover())
	_, err := h(context.Background(), Envelope{Type: MsgPing, From: "p1"})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("panic not converted: %v", err)
	}
}

func TestLoggingMiddleware(t *testing.T) {
	var lines []string
	h := Chain(func(context.Context, Envelope) (*Envelope, error) {
		return nil, fmt.Errorf("nope")
	}, Logging(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}))
	_, _ = h(context.Background(), Envelope{Type: MsgPing, From: "p1"})
	if len(lines) != 1 || !strings.Contains(lines[0], "ping") || !strings.Contains(lines[0], "nope") {
		t.Errorf("log lines = %q", lines)
	}
}

func TestMetricsMiddleware(t *testing.T) {
	var m Metrics
	h := Chain(func(ctx context.Context, env Envelope) (*Envelope, error) {
		if env.Type == MsgError {
			return nil, fmt.Errorf("bad")
		}
		return &Envelope{Type: MsgPong}, nil
	}, m.Collect())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_, _ = h(ctx, Envelope{Type: MsgPing})
	}
	_, _ = h(ctx, Envelope{Type: MsgError})
	if m.Handled() != 4 || m.Errors() != 1 {
		t.Errorf("handled = %d errors = %d", m.Handled(), m.Errors())
	}
	snap := m.Snapshot()
	if snap[MsgPing].Handled != 3 || snap[MsgPing].Errors != 0 {
		t.Errorf("ping metrics = %+v", snap[MsgPing])
	}
	if snap[MsgError].Errors != 1 {
		t.Errorf("error metrics = %+v", snap[MsgError])
	}
	if snap[MsgPing].MaxLatency < 0 || snap[MsgPing].TotalTime < snap[MsgPing].MaxLatency {
		t.Errorf("latency accounting inconsistent: %+v", snap[MsgPing])
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	tag := func(name string) Middleware {
		return func(next Handler) Handler {
			return func(ctx context.Context, env Envelope) (*Envelope, error) {
				order = append(order, name)
				return next(ctx, env)
			}
		}
	}
	h := Chain(func(context.Context, Envelope) (*Envelope, error) {
		order = append(order, "handler")
		return nil, nil
	}, tag("outer"), nil, tag("inner"))
	_, _ = h(context.Background(), Envelope{})
	if strings.Join(order, ",") != "outer,inner,handler" {
		t.Errorf("order = %v", order)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base, failing the test if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), base)
}

func TestBusRequestCancelNoLeak(t *testing.T) {
	bus := NewBus()
	release := make(chan struct{})
	bus.Register("slow", func(ctx context.Context, _ Envelope) (*Envelope, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return nil, nil
		}
	})
	base := runtime.NumGoroutine()
	env, _ := NewEnvelope(MsgPing, "p", "slow", nil)
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := bus.Request(ctx, "slow", env)
			done <- err
		}()
		time.Sleep(time.Millisecond)
		cancel()
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
	close(release)
	waitGoroutines(t, base)
}

func TestBusRequestTimeoutNoLeak(t *testing.T) {
	// A handler that honors ctx: a timed-out request must not leave its
	// worker goroutine behind.
	bus := NewBus()
	bus.Register("slow", func(ctx context.Context, _ Envelope) (*Envelope, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	base := runtime.NumGoroutine()
	env, _ := NewEnvelope(MsgPing, "p", "slow", nil)
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		if _, err := bus.Request(ctx, "slow", env); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded", err)
		}
		cancel()
	}
	waitGoroutines(t, base)
}

func TestTCPRequestCancelMidFlight(t *testing.T) {
	// The server handler stalls until server shutdown; the client's
	// cancellation must unblock the request immediately.
	srv, err := ListenTCP("127.0.0.1:0", func(ctx context.Context, _ Envelope) (*Envelope, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", srv.Addr())

	env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = client.Request(ctx, "srv", env)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

func TestTCPRequestDeadline(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(ctx context.Context, _ Envelope) (*Envelope, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", srv.Addr())

	env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := client.Request(ctx, "srv", env); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestTCPRequestPreCanceled(t *testing.T) {
	client := NewTCPClient("p1")
	defer client.Close()
	client.SetRoute("srv", "127.0.0.1:1") // never dialed
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env, _ := NewEnvelope(MsgPing, "p1", "srv", nil)
	if _, err := client.Request(ctx, "srv", env); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestMetricsCountRecoveredPanics(t *testing.T) {
	// Collect outside Recover: a converted panic must count as an
	// error (the ordering core.Node uses).
	var m Metrics
	h := Chain(func(context.Context, Envelope) (*Envelope, error) {
		panic("boom")
	}, m.Collect(), Recover())
	if _, err := h(context.Background(), Envelope{Type: MsgPing}); err == nil {
		t.Fatal("panic not converted to error")
	}
	if m.Handled() != 1 || m.Errors() != 1 {
		t.Errorf("handled = %d errors = %d, want 1/1", m.Handled(), m.Errors())
	}
}

func TestBusRequestPreCanceled(t *testing.T) {
	// Same contract as TCP: a request on an already-canceled context
	// must not run the handler at all.
	bus := NewBus()
	var ran atomic.Int32
	bus.Register("brp1", func(ctx context.Context, env Envelope) (*Envelope, error) {
		ran.Add(1)
		reply, err := NewEnvelope(MsgPong, "brp1", env.From, nil)
		return &reply, err
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env, _ := NewEnvelope(MsgPing, "p1", "brp1", nil)
	if _, err := bus.Request(ctx, "brp1", env); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("handler ran %d times on canceled context", ran.Load())
	}
}
