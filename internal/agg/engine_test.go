package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mirabel/internal/flexoffer"
)

// equivAggregates compares a live (delta-maintained) aggregate against a
// from-scratch build over the same members: combined offer attributes
// exactly, profile/totals/cost within float tolerance.
func equivAggregates(t *testing.T, live *Aggregate, tag string) bool {
	t.Helper()
	scratch := buildAggregate(live.Offer.ID, live.Members())
	lo, so := live.Offer, scratch.Offer
	if lo.EarliestStart != so.EarliestStart || lo.LatestStart != so.LatestStart ||
		lo.AssignBefore != so.AssignBefore || len(lo.Profile) != len(so.Profile) {
		t.Logf("%s: attrs live=(es=%d ls=%d ab=%d len=%d) scratch=(es=%d ls=%d ab=%d len=%d)",
			tag, lo.EarliestStart, lo.LatestStart, lo.AssignBefore, len(lo.Profile),
			so.EarliestStart, so.LatestStart, so.AssignBefore, len(so.Profile))
		return false
	}
	const eps = 1e-9
	for j := range lo.Profile {
		if math.Abs(lo.Profile[j].EnergyMin-so.Profile[j].EnergyMin) > eps ||
			math.Abs(lo.Profile[j].EnergyMax-so.Profile[j].EnergyMax) > eps {
			t.Logf("%s: slice %d live=%+v scratch=%+v", tag, j, lo.Profile[j], so.Profile[j])
			return false
		}
	}
	if math.Abs(live.TotalMin-scratch.TotalMin) > eps || math.Abs(live.TotalMax-scratch.TotalMax) > eps {
		t.Logf("%s: totals live=[%g,%g] scratch=[%g,%g]", tag, live.TotalMin, live.TotalMax, scratch.TotalMin, scratch.TotalMax)
		return false
	}
	if math.Abs(lo.CostPerKWh-so.CostPerKWh) > eps {
		t.Logf("%s: cost live=%g scratch=%g", tag, lo.CostPerKWh, so.CostPerKWh)
		return false
	}
	if live.nMinES != scratch.nMinES || live.nMinTF != scratch.nMinTF ||
		live.nMinAB != scratch.nMinAB || live.nMaxEnd != scratch.nMaxEnd {
		t.Logf("%s: counters live=(%d,%d,%d,%d) scratch=(%d,%d,%d,%d)", tag,
			live.nMinES, live.nMinTF, live.nMinAB, live.nMaxEnd,
			scratch.nMinES, scratch.nMinTF, scratch.nMinAB, scratch.nMaxEnd)
		return false
	}
	return true
}

// Property (the delta-path correctness pin): after any random
// interleaving of batched inserts and deletes, every live aggregate is
// equivalent to a from-scratch build over its current members.
func TestPropertyDeltaEqualsScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPipeline(ParamsP3, BinPackerOptions{})
		p.Workers = 1 + rng.Intn(4)
		pool := randomOffers(rng, 120)
		for i := range pool {
			pool[i].CostPerKWh = rng.Float64() * 0.5
		}
		live := map[flexoffer.ID]*flexoffer.FlexOffer{}
		next := 0
		for round := 0; round < 8; round++ {
			var batch []FlexOfferUpdate
			// Random deletes of live offers.
			for id, off := range live {
				if rng.Intn(3) == 0 {
					batch = append(batch, FlexOfferUpdate{Kind: Delete, Offer: off})
					delete(live, id)
				}
			}
			// Random inserts from the pool.
			for next < len(pool) && rng.Intn(2) == 0 {
				batch = append(batch, FlexOfferUpdate{Kind: Insert, Offer: pool[next]})
				live[pool[next].ID] = pool[next]
				next++
			}
			if err := p.Accumulate(batch...); err != nil {
				t.Logf("seed %d round %d: %v", seed, round, err)
				return false
			}
			p.Process()
			for _, a := range p.Aggregates() {
				if !equivAggregates(t, a, "live") {
					t.Logf("seed %d round %d: aggregate %d diverged", seed, round, a.Offer.ID)
					return false
				}
			}
		}
		if got := p.GroupBuilder.NumOffers(); got != len(live) {
			t.Logf("seed %d: grouped offers %d, want %d", seed, got, len(live))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The parallel fan-out must be invisible: identical update streams
// produce identical aggregates (IDs, members, profiles) at any worker
// count.
func TestParallelProcessMatchesSerial(t *testing.T) {
	build := func(workers int) *Pipeline {
		rng := rand.New(rand.NewSource(7))
		p := NewPipeline(ParamsP3, BinPackerOptions{MaxMembers: 6})
		p.Workers = workers
		offers := randomOffers(rng, 200)
		if err := p.Accumulate(inserts(offers[:120]...)...); err != nil {
			t.Fatal(err)
		}
		p.Process()
		var batch []FlexOfferUpdate
		for i := 0; i < 40; i++ {
			batch = append(batch, FlexOfferUpdate{Kind: Delete, Offer: offers[i*3]})
		}
		batch = append(batch, inserts(offers[120:]...)...)
		if err := p.Accumulate(batch...); err != nil {
			t.Fatal(err)
		}
		p.Process()
		return p
	}
	serial := build(1)
	for _, w := range []int{2, 4, 8} {
		par := build(w)
		sa, pa := serial.Aggregates(), par.Aggregates()
		if len(sa) != len(pa) {
			t.Fatalf("workers=%d: %d aggregates, serial has %d", w, len(pa), len(sa))
		}
		for i := range sa {
			if sa[i].Offer.ID != pa[i].Offer.ID {
				t.Fatalf("workers=%d: aggregate %d has ID %d, serial %d", w, i, pa[i].Offer.ID, sa[i].Offer.ID)
			}
			if aggSignature(sa[i]) != aggSignature(pa[i]) {
				t.Errorf("workers=%d: aggregate %d signature mismatch", w, pa[i].Offer.ID)
			}
			sm, pm := sa[i].Members(), pa[i].Members()
			if len(sm) != len(pm) {
				t.Fatalf("workers=%d: aggregate %d members %d vs %d", w, pa[i].Offer.ID, len(pm), len(sm))
			}
			for j := range sm {
				if sm[j].ID != pm[j].ID {
					t.Errorf("workers=%d: aggregate %d member %d is %d, serial %d", w, pa[i].Offer.ID, j, pm[j].ID, sm[j].ID)
				}
			}
		}
	}
}

// Satellite: a batch that fails validation must leave the builder
// untouched — no half-applied inserts, no stuck pending updates.
func TestAccumulateBatchAtomicOnError(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	good := offer(1, 100, 8, 4, 1, 2)
	if _, err := p.Apply(inserts(good)...); err != nil {
		t.Fatal(err)
	}
	bad := offer(3, 100, 8, 4, 1, 2)
	bad.LatestStart = 50 // invalid
	batch := []FlexOfferUpdate{
		{Kind: Insert, Offer: offer(2, 100, 8, 4, 1, 2)}, // valid, earlier in batch
		{Kind: Delete, Offer: good},                      // valid, earlier in batch
		{Kind: Insert, Offer: bad},                       // fails validation
	}
	if err := p.Accumulate(batch...); err == nil {
		t.Fatal("batch with invalid offer should error")
	}
	if n := p.NumPending(); n != 0 {
		t.Errorf("pending after failed batch = %d, want 0", n)
	}
	// Offer 2's insert and offer 1's delete must NOT have been recorded.
	if p.Contains(2) {
		t.Error("failed batch leaked insert of offer 2")
	}
	if !p.Contains(1) {
		t.Error("failed batch applied delete of offer 1")
	}
	ups := p.Process()
	if len(ups) != 0 {
		t.Errorf("process after failed batch produced %d updates, want 0", len(ups))
	}
	if got := len(p.Aggregates()); got != 1 {
		t.Errorf("aggregates = %d, want 1 (only the original offer)", got)
	}
	// And the builder still works: a duplicate-id batch also rolls back.
	if err := p.Accumulate(
		FlexOfferUpdate{Kind: Insert, Offer: offer(5, 100, 8, 4, 1, 2)},
		FlexOfferUpdate{Kind: Insert, Offer: offer(1, 100, 8, 4, 1, 2)}, // dup of applied
	); err == nil {
		t.Fatal("duplicate id in batch should error")
	}
	if p.Contains(5) || p.NumPending() != 0 {
		t.Error("duplicate-id batch leaked state")
	}
}

// Satellite: removing an id that is not a member must be a no-op — no
// rebuild, no version bump.
func TestRemoveUnknownIDNoRebuild(t *testing.T) {
	a := buildAggregate(1, []*flexoffer.FlexOffer{
		offer(10, 100, 8, 4, 1, 2),
		offer(11, 100, 8, 4, 1, 2),
	})
	v := a.Version
	if !a.remove(99) {
		t.Fatal("remove of unknown id reported aggregate death")
	}
	if a.Version != v {
		t.Errorf("remove of unknown id bumped version %d → %d", v, a.Version)
	}
	if a.NumMembers() != 2 {
		t.Errorf("members = %d, want 2", a.NumMembers())
	}
	if !a.applyBatch(nil, []flexoffer.ID{98, 97}) {
		t.Fatal("batch of unknown removals reported aggregate death")
	}
	if a.Version != v {
		t.Errorf("unknown-only batch bumped version %d → %d", v, a.Version)
	}
}

// A delete of a still-pending insert cancels it: the offer never reaches
// the groups, and the batch costs nothing at Process time.
func TestInsertThenDeleteCancelsPending(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	f := offer(1, 100, 8, 4, 1, 2)
	if err := p.Accumulate(FlexOfferUpdate{Kind: Insert, Offer: f}); err != nil {
		t.Fatal(err)
	}
	if !p.Contains(1) {
		t.Fatal("pending insert not visible to Contains")
	}
	if err := p.Accumulate(FlexOfferUpdate{Kind: Delete, Offer: f}); err != nil {
		t.Fatal(err)
	}
	if p.Contains(1) {
		t.Error("cancelled insert still visible")
	}
	if n := p.NumPending(); n != 0 {
		t.Errorf("pending = %d, want 0 after cancellation", n)
	}
	if ups := p.Process(); len(ups) != 0 {
		t.Errorf("cancelled insert produced %d aggregate updates", len(ups))
	}
	// Re-insert after cancellation must work.
	if _, err := p.Apply(inserts(f)...); err != nil {
		t.Fatalf("re-insert after cancellation: %v", err)
	}
	if got := len(p.Aggregates()); got != 1 {
		t.Errorf("aggregates = %d, want 1", got)
	}
}

// Delete-then-reinsert of the same id within one batch replaces the
// offer (new attributes, possibly a new group).
func TestDeleteThenReinsertSameBatch(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	f := offer(1, 100, 8, 4, 1, 2)
	if _, err := p.Apply(inserts(f)...); err != nil {
		t.Fatal(err)
	}
	moved := offer(1, 200, 8, 4, 1, 2)
	if _, err := p.Apply(
		FlexOfferUpdate{Kind: Delete, Offer: f},
		FlexOfferUpdate{Kind: Insert, Offer: moved},
	); err != nil {
		t.Fatal(err)
	}
	aggs := p.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	if aggs[0].Offer.EarliestStart != 200 {
		t.Errorf("aggregate ES = %d, want the reinserted offer's 200", aggs[0].Offer.EarliestStart)
	}
}

// Versions bump exactly once per mutating batch, and Snapshot carries
// the version so callers can reuse cached snapshots of unchanged
// aggregates.
func TestVersionPerBatchAndSnapshotCarriesVersion(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	var batch []FlexOfferUpdate
	for i := 1; i <= 4; i++ {
		batch = append(batch, FlexOfferUpdate{Kind: Insert, Offer: offer(flexoffer.ID(i), 100, 8, 4, 1, 2)})
	}
	if _, err := p.Apply(batch...); err != nil {
		t.Fatal(err)
	}
	a := p.Aggregates()[0]
	v0 := a.Version
	snap := a.Snapshot()
	if snap.Version != v0 {
		t.Fatalf("snapshot version %d, live %d", snap.Version, v0)
	}
	// One batch with two deletes: exactly one version bump.
	if _, err := p.Apply(
		FlexOfferUpdate{Kind: Delete, Offer: offer(1, 100, 8, 4, 1, 2)},
		FlexOfferUpdate{Kind: Delete, Offer: offer(2, 100, 8, 4, 1, 2)},
	); err != nil {
		t.Fatal(err)
	}
	if a.Version != v0+1 {
		t.Errorf("version after one batch = %d, want %d", a.Version, v0+1)
	}
	if snap.NumMembers() != 4 {
		t.Errorf("snapshot members = %d, want 4 (frozen)", snap.NumMembers())
	}
}

// A member that ties a boundary with others is delta-removable; the last
// member at a boundary forces exactly one rebuild for the batch.
func TestBoundaryCountersGateRebuild(t *testing.T) {
	// Three members: two share min TF (2), one has larger TF.
	a := buildAggregate(1, []*flexoffer.FlexOffer{
		offer(10, 100, 2, 4, 1, 2),
		offer(11, 100, 2, 4, 1, 2),
		offer(12, 100, 9, 4, 1, 2),
	})
	if a.nMinTF != 2 {
		t.Fatalf("nMinTF = %d, want 2", a.nMinTF)
	}
	// Removing one of the tied members keeps TF at 2 (delta path).
	if !a.applyBatch(nil, []flexoffer.ID{10}) {
		t.Fatal("aggregate died")
	}
	if tf := a.Offer.TimeFlexibility(); tf != 2 {
		t.Errorf("TF after tied removal = %d, want 2", tf)
	}
	if a.nMinTF != 1 {
		t.Errorf("nMinTF = %d, want 1", a.nMinTF)
	}
	// Removing the last min-TF member must widen TF to 9 (rebuild path).
	if !a.applyBatch(nil, []flexoffer.ID{11}) {
		t.Fatal("aggregate died")
	}
	if tf := a.Offer.TimeFlexibility(); tf != 9 {
		t.Errorf("TF after boundary-owner removal = %d, want 9", tf)
	}
	if !equivAggregates(t, a, "after boundary removal") {
		t.Error("aggregate diverged from scratch build")
	}
}
