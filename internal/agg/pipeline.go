package agg

import (
	"fmt"
	"sort"

	"mirabel/internal/flexoffer"
)

// groupUpdate is the internal delta between group-builder and bin-packer:
// which offers joined/left which similarity group.
type groupUpdate struct {
	key     groupKey
	added   []*flexoffer.FlexOffer
	removed []*flexoffer.FlexOffer
}

// GroupBuilder partitions flex-offers into disjoint groups of similar
// offers according to the aggregation thresholds. Updates accumulate
// until Process is invoked (paper: "flex-offer updates are accumulated
// within the group-builder until their further processing is invoked").
//
// Accumulate validates each whole batch up front against the membership
// index and the already-pending updates, then records it infallibly —
// a failed batch leaves the builder exactly as it was, and Process can
// never fail half way through. Pending inserts and deletes are kept as
// net-effect maps: deleting a still-pending insert cancels it, so an
// offer that arrives and expires between two cycles costs nothing.
type GroupBuilder struct {
	params Params
	groups map[groupKey]map[flexoffer.ID]*flexoffer.FlexOffer
	// byID is the membership index over applied offers: which group an
	// offer lives in. Delete validation is a map lookup — the offer's
	// grouping key is never re-derived from caller-supplied attributes.
	byID   map[flexoffer.ID]groupKey
	offers int

	// Net-effect pending state, applied by Process.
	pendingIns map[flexoffer.ID]*flexoffer.FlexOffer
	pendingDel map[flexoffer.ID]bool
}

// NewGroupBuilder returns an empty group-builder with the given
// thresholds.
func NewGroupBuilder(params Params) *GroupBuilder {
	return &GroupBuilder{
		params:     params,
		groups:     make(map[groupKey]map[flexoffer.ID]*flexoffer.FlexOffer),
		byID:       make(map[flexoffer.ID]groupKey),
		pendingIns: make(map[flexoffer.ID]*flexoffer.FlexOffer),
		pendingDel: make(map[flexoffer.ID]bool),
	}
}

// Accumulate queues flex-offer updates for the next Process call. The
// whole batch is validated first (offer validity, duplicate inserts,
// deletes of unknown offers); on error nothing is recorded. A Delete of
// an offer whose Insert is still pending cancels the insert in place.
func (g *GroupBuilder) Accumulate(updates ...FlexOfferUpdate) error {
	// Simulated net effect of this batch, committed only if every update
	// validates.
	var (
		insAdd map[flexoffer.ID]*flexoffer.FlexOffer // pendingIns additions
		insCut map[flexoffer.ID]bool                 // pendingIns cancellations
		delAdd map[flexoffer.ID]bool                 // pendingDel additions
	)
	pendingInsert := func(id flexoffer.ID) bool {
		if insAdd[id] != nil {
			return true
		}
		if insCut[id] {
			return false
		}
		return g.pendingIns[id] != nil
	}
	pendingDelete := func(id flexoffer.ID) bool {
		return delAdd[id] || g.pendingDel[id]
	}
	for _, u := range updates {
		switch u.Kind {
		case Insert:
			if err := u.Offer.Validate(); err != nil {
				return fmt.Errorf("agg: rejecting offer: %w", err)
			}
			id := u.Offer.ID
			if pendingInsert(id) {
				return fmt.Errorf("agg: duplicate flex-offer id %d", id)
			}
			if _, applied := g.byID[id]; applied && !pendingDelete(id) {
				return fmt.Errorf("agg: duplicate flex-offer id %d", id)
			}
			if insAdd == nil {
				insAdd = make(map[flexoffer.ID]*flexoffer.FlexOffer)
			}
			insAdd[id] = u.Offer
			delete(insCut, id)
		case Delete:
			if u.Offer == nil {
				return fmt.Errorf("agg: delete of nil flex-offer")
			}
			id := u.Offer.ID
			switch {
			case pendingInsert(id):
				// Cancel the not-yet-processed insert: net effect zero.
				if insAdd[id] != nil {
					delete(insAdd, id)
				} else {
					if insCut == nil {
						insCut = make(map[flexoffer.ID]bool)
					}
					insCut[id] = true
				}
			default:
				if _, applied := g.byID[id]; !applied || pendingDelete(id) {
					return fmt.Errorf("agg: delete of unknown flex-offer id %d", id)
				}
				if delAdd == nil {
					delAdd = make(map[flexoffer.ID]bool)
				}
				delAdd[id] = true
			}
		default:
			return fmt.Errorf("agg: unknown update kind %v", u.Kind)
		}
	}
	// Commit — infallible.
	for id := range insCut {
		delete(g.pendingIns, id)
	}
	for id, off := range insAdd {
		g.pendingIns[id] = off
	}
	for id := range delAdd {
		g.pendingDel[id] = true
	}
	return nil
}

// Process applies all accumulated updates to the maintained groups and
// returns the group deltas. It cannot fail: every update was validated
// by Accumulate. Deltas are emitted in deterministic (key, member-ID)
// order so downstream parallel processing assigns stable aggregate IDs.
func (g *GroupBuilder) Process() []groupUpdate {
	if len(g.pendingIns) == 0 && len(g.pendingDel) == 0 {
		return nil
	}
	deltas := make(map[groupKey]*groupUpdate)
	delta := func(k groupKey) *groupUpdate {
		d, ok := deltas[k]
		if !ok {
			d = &groupUpdate{key: k}
			deltas[k] = d
		}
		return d
	}
	// Removals first (an offer deleted and re-inserted in one batch must
	// leave its old group before joining the new one), in ID order.
	for _, id := range sortedIDKeys(g.pendingDel) {
		k := g.byID[id]
		grp := g.groups[k]
		off := grp[id]
		delete(grp, id)
		if len(grp) == 0 {
			delete(g.groups, k)
		}
		delete(g.byID, id)
		g.offers--
		delta(k).removed = append(delta(k).removed, off)
		delete(g.pendingDel, id)
	}
	ins := make([]flexoffer.ID, 0, len(g.pendingIns))
	for id := range g.pendingIns {
		ins = append(ins, id)
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	for _, id := range ins {
		off := g.pendingIns[id]
		k := g.params.keyOf(off)
		grp, ok := g.groups[k]
		if !ok {
			grp = make(map[flexoffer.ID]*flexoffer.FlexOffer)
			g.groups[k] = grp
		}
		grp[id] = off
		g.byID[id] = k
		g.offers++
		delta(k).added = append(delta(k).added, off)
		delete(g.pendingIns, id)
	}
	out := make([]groupUpdate, 0, len(deltas))
	for _, d := range deltas {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].key, out[j].key) })
	return out
}

func sortedIDKeys(m map[flexoffer.ID]bool) []flexoffer.ID {
	out := make([]flexoffer.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func keyLess(a, b groupKey) bool {
	if a.es != b.es {
		return a.es < b.es
	}
	if a.tf != b.tf {
		return a.tf < b.tf
	}
	return a.dur < b.dur
}

// Contains reports whether the offer id is either applied to a group or
// pending insertion — the membership test intake uses instead of pushing
// a probe update through the pipeline.
func (g *GroupBuilder) Contains(id flexoffer.ID) bool {
	if _, ok := g.pendingIns[id]; ok {
		return true // includes delete-then-reinsert within one batch
	}
	if g.pendingDel[id] {
		return false
	}
	_, ok := g.byID[id]
	return ok
}

// NumGroups returns the current number of similarity groups.
func (g *GroupBuilder) NumGroups() int { return len(g.groups) }

// NumOffers returns the number of flex-offers currently grouped.
func (g *GroupBuilder) NumOffers() int { return g.offers }

// NumPending returns the number of accumulated-but-unprocessed updates.
func (g *GroupBuilder) NumPending() int { return len(g.pendingIns) + len(g.pendingDel) }

// BinPackerOptions bound the sub-groups the bin-packer produces (paper:
// "lower and upper bounds on ... the number of flex-offers included into
// a single aggregate, the amount of energy ... an aggregated flex-offer
// has to offer"). Zero values disable a bound; with all bounds disabled
// the pipeline skips the bin-packer stage entirely ("this bin-packer is
// an optional feature and can be turned off").
type BinPackerOptions struct {
	// MaxMembers caps the members per aggregate.
	MaxMembers int
	// MaxEnergyKWh caps Σ |max total energy| of members per aggregate.
	MaxEnergyKWh float64
}

func (o BinPackerOptions) enabled() bool { return o.MaxMembers > 0 || o.MaxEnergyKWh > 0 }

// fits reports whether a sub-group with the given load can absorb m.
func (o BinPackerOptions) fits(count int, energy float64, m *flexoffer.FlexOffer) bool {
	if o.MaxMembers > 0 && count+1 > o.MaxMembers {
		return false
	}
	if o.MaxEnergyKWh > 0 && energy+absTotalMax(m) > o.MaxEnergyKWh {
		return false
	}
	return true
}

// subgroupID identifies one bounds-satisfying sub-group within a group.
type subgroupID struct {
	key groupKey
	seq int
}

// subgroup is the bin-packer's unit of work; one aggregate is maintained
// per sub-group.
type subgroup struct {
	members map[flexoffer.ID]*flexoffer.FlexOffer
	energy  float64
}

// subgroupUpdate is the delta between bin-packer and n-to-1 aggregator.
type subgroupUpdate struct {
	id      subgroupID
	added   []*flexoffer.FlexOffer
	removed []flexoffer.ID
}

// BinPacker splits similarity groups into bounds-satisfying sub-groups
// using first-fit packing, maintained incrementally.
type BinPacker struct {
	opts      BinPackerOptions
	seq       map[groupKey]int
	subgroups map[subgroupID]*subgroup
	byOffer   map[flexoffer.ID]subgroupID
	byGroup   map[groupKey][]subgroupID
}

// NewBinPacker returns a bin-packer with the given bounds.
func NewBinPacker(opts BinPackerOptions) *BinPacker {
	return &BinPacker{
		opts:      opts,
		seq:       make(map[groupKey]int),
		subgroups: make(map[subgroupID]*subgroup),
		byOffer:   make(map[flexoffer.ID]subgroupID),
		byGroup:   make(map[groupKey][]subgroupID),
	}
}

// Process converts group deltas into sub-group deltas, in deterministic
// sub-group order.
func (b *BinPacker) Process(groups []groupUpdate) []subgroupUpdate {
	deltas := make(map[subgroupID]*subgroupUpdate)
	delta := func(id subgroupID) *subgroupUpdate {
		d, ok := deltas[id]
		if !ok {
			d = &subgroupUpdate{id: id}
			deltas[id] = d
		}
		return d
	}
	for _, gu := range groups {
		for _, off := range gu.removed {
			id, ok := b.byOffer[off.ID]
			if !ok {
				continue
			}
			sg := b.subgroups[id]
			delete(sg.members, off.ID)
			sg.energy -= absTotalMax(off)
			delete(b.byOffer, off.ID)
			delta(id).removed = append(delta(id).removed, off.ID)
			if len(sg.members) == 0 {
				delete(b.subgroups, id)
				b.byGroup[gu.key] = removeSubgroupID(b.byGroup[gu.key], id)
				if len(b.byGroup[gu.key]) == 0 {
					delete(b.byGroup, gu.key)
				}
			}
		}
		for _, off := range gu.added {
			id := b.place(gu.key, off)
			delta(id).added = append(delta(id).added, off)
		}
	}
	out := make([]subgroupUpdate, 0, len(deltas))
	for _, d := range deltas {
		out = append(out, *d)
	}
	sortSubgroupUpdates(out)
	return out
}

// place assigns the offer to the first sub-group of its group with
// capacity, creating a new sub-group when none fits.
func (b *BinPacker) place(key groupKey, off *flexoffer.FlexOffer) subgroupID {
	for _, id := range b.byGroup[key] {
		sg := b.subgroups[id]
		if b.opts.fits(len(sg.members), sg.energy, off) {
			sg.members[off.ID] = off
			sg.energy += absTotalMax(off)
			b.byOffer[off.ID] = id
			return id
		}
	}
	b.seq[key]++
	id := subgroupID{key: key, seq: b.seq[key]}
	sg := &subgroup{members: map[flexoffer.ID]*flexoffer.FlexOffer{off.ID: off}, energy: absTotalMax(off)}
	b.subgroups[id] = sg
	b.byGroup[key] = append(b.byGroup[key], id)
	b.byOffer[off.ID] = id
	return id
}

func removeSubgroupID(ids []subgroupID, id subgroupID) []subgroupID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// NumSubgroups returns the current number of sub-groups.
func (b *BinPacker) NumSubgroups() int { return len(b.subgroups) }

// passthrough converts group deltas straight into sub-group deltas (one
// sub-group per group) when the bin-packer is disabled.
func passthrough(groups []groupUpdate) []subgroupUpdate {
	out := make([]subgroupUpdate, len(groups))
	for i, gu := range groups {
		su := subgroupUpdate{id: subgroupID{key: gu.key}, added: gu.added}
		if len(gu.removed) > 0 {
			su.removed = make([]flexoffer.ID, len(gu.removed))
			for j, off := range gu.removed {
				su.removed[j] = off.ID
			}
		}
		out[i] = su
	}
	return out
}

func sortSubgroupUpdates(subs []subgroupUpdate) {
	sort.Slice(subs, func(i, j int) bool {
		a, b := subs[i].id, subs[j].id
		if a.key != b.key {
			return keyLess(a.key, b.key)
		}
		return a.seq < b.seq
	})
}
