package agg

import (
	"fmt"

	"mirabel/internal/flexoffer"
)

// groupUpdate is the internal delta between group-builder and bin-packer:
// which offers joined/left which similarity group.
type groupUpdate struct {
	key     groupKey
	added   []*flexoffer.FlexOffer
	removed []*flexoffer.FlexOffer
}

// GroupBuilder partitions flex-offers into disjoint groups of similar
// offers according to the aggregation thresholds. Updates accumulate
// until Process is invoked (paper: "flex-offer updates are accumulated
// within the group-builder until their further processing is invoked").
type GroupBuilder struct {
	params  Params
	pending []FlexOfferUpdate
	groups  map[groupKey]map[flexoffer.ID]*flexoffer.FlexOffer
	offers  int
}

// NewGroupBuilder returns an empty group-builder with the given
// thresholds.
func NewGroupBuilder(params Params) *GroupBuilder {
	return &GroupBuilder{
		params: params,
		groups: make(map[groupKey]map[flexoffer.ID]*flexoffer.FlexOffer),
	}
}

// Accumulate queues flex-offer updates for the next Process call. Delete
// updates must carry the same offer attributes as the original insert
// (the node keeps flex-offers in its store), because the group is located
// by re-deriving the grouping key.
func (g *GroupBuilder) Accumulate(updates ...FlexOfferUpdate) {
	g.pending = append(g.pending, updates...)
}

// Process applies all accumulated updates to the maintained groups and
// returns the group deltas.
func (g *GroupBuilder) Process() ([]groupUpdate, error) {
	deltas := make(map[groupKey]*groupUpdate)
	delta := func(k groupKey) *groupUpdate {
		d, ok := deltas[k]
		if !ok {
			d = &groupUpdate{key: k}
			deltas[k] = d
		}
		return d
	}
	for _, u := range g.pending {
		switch u.Kind {
		case Insert:
			if err := u.Offer.Validate(); err != nil {
				return nil, fmt.Errorf("agg: rejecting offer: %w", err)
			}
			k := g.params.keyOf(u.Offer)
			grp, ok := g.groups[k]
			if !ok {
				grp = make(map[flexoffer.ID]*flexoffer.FlexOffer)
				g.groups[k] = grp
			}
			if _, dup := grp[u.Offer.ID]; dup {
				return nil, fmt.Errorf("agg: duplicate flex-offer id %d", u.Offer.ID)
			}
			grp[u.Offer.ID] = u.Offer
			g.offers++
			delta(k).added = append(delta(k).added, u.Offer)
		case Delete:
			k := g.params.keyOf(u.Offer)
			grp := g.groups[k]
			off, ok := grp[u.Offer.ID]
			if !ok {
				return nil, fmt.Errorf("agg: delete of unknown flex-offer id %d", u.Offer.ID)
			}
			delete(grp, u.Offer.ID)
			g.offers--
			if len(grp) == 0 {
				delete(g.groups, k)
			}
			delta(k).removed = append(delta(k).removed, off)
		default:
			return nil, fmt.Errorf("agg: unknown update kind %v", u.Kind)
		}
	}
	g.pending = g.pending[:0]
	out := make([]groupUpdate, 0, len(deltas))
	for _, d := range deltas {
		out = append(out, *d)
	}
	return out, nil
}

// NumGroups returns the current number of similarity groups.
func (g *GroupBuilder) NumGroups() int { return len(g.groups) }

// NumOffers returns the number of flex-offers currently grouped.
func (g *GroupBuilder) NumOffers() int { return g.offers }

// BinPackerOptions bound the sub-groups the bin-packer produces (paper:
// "lower and upper bounds on ... the number of flex-offers included into
// a single aggregate, the amount of energy ... an aggregated flex-offer
// has to offer"). Zero values disable a bound; with all bounds disabled
// the pipeline skips the bin-packer stage entirely ("this bin-packer is
// an optional feature and can be turned off").
type BinPackerOptions struct {
	// MaxMembers caps the members per aggregate.
	MaxMembers int
	// MaxEnergyKWh caps Σ |max total energy| of members per aggregate.
	MaxEnergyKWh float64
}

func (o BinPackerOptions) enabled() bool { return o.MaxMembers > 0 || o.MaxEnergyKWh > 0 }

// fits reports whether a sub-group with the given load can absorb m.
func (o BinPackerOptions) fits(count int, energy float64, m *flexoffer.FlexOffer) bool {
	if o.MaxMembers > 0 && count+1 > o.MaxMembers {
		return false
	}
	if o.MaxEnergyKWh > 0 && energy+absTotalMax(m) > o.MaxEnergyKWh {
		return false
	}
	return true
}

// subgroupID identifies one bounds-satisfying sub-group within a group.
type subgroupID struct {
	key groupKey
	seq int
}

// subgroup is the bin-packer's unit of work; one aggregate is maintained
// per sub-group.
type subgroup struct {
	members map[flexoffer.ID]*flexoffer.FlexOffer
	energy  float64
}

// subgroupUpdate is the delta between bin-packer and n-to-1 aggregator.
type subgroupUpdate struct {
	id      subgroupID
	added   []*flexoffer.FlexOffer
	removed []flexoffer.ID
}

// BinPacker splits similarity groups into bounds-satisfying sub-groups
// using first-fit packing, maintained incrementally.
type BinPacker struct {
	opts      BinPackerOptions
	seq       map[groupKey]int
	subgroups map[subgroupID]*subgroup
	byOffer   map[flexoffer.ID]subgroupID
	byGroup   map[groupKey][]subgroupID
}

// NewBinPacker returns a bin-packer with the given bounds.
func NewBinPacker(opts BinPackerOptions) *BinPacker {
	return &BinPacker{
		opts:      opts,
		seq:       make(map[groupKey]int),
		subgroups: make(map[subgroupID]*subgroup),
		byOffer:   make(map[flexoffer.ID]subgroupID),
		byGroup:   make(map[groupKey][]subgroupID),
	}
}

// Process converts group deltas into sub-group deltas.
func (b *BinPacker) Process(groups []groupUpdate) []subgroupUpdate {
	deltas := make(map[subgroupID]*subgroupUpdate)
	delta := func(id subgroupID) *subgroupUpdate {
		d, ok := deltas[id]
		if !ok {
			d = &subgroupUpdate{id: id}
			deltas[id] = d
		}
		return d
	}
	for _, gu := range groups {
		for _, off := range gu.removed {
			id, ok := b.byOffer[off.ID]
			if !ok {
				continue
			}
			sg := b.subgroups[id]
			delete(sg.members, off.ID)
			sg.energy -= absTotalMax(off)
			delete(b.byOffer, off.ID)
			delta(id).removed = append(delta(id).removed, off.ID)
			if len(sg.members) == 0 {
				delete(b.subgroups, id)
				b.byGroup[gu.key] = removeSubgroupID(b.byGroup[gu.key], id)
				if len(b.byGroup[gu.key]) == 0 {
					delete(b.byGroup, gu.key)
				}
			}
		}
		for _, off := range gu.added {
			id := b.place(gu.key, off)
			delta(id).added = append(delta(id).added, off)
		}
	}
	out := make([]subgroupUpdate, 0, len(deltas))
	for _, d := range deltas {
		out = append(out, *d)
	}
	return out
}

// place assigns the offer to the first sub-group of its group with
// capacity, creating a new sub-group when none fits.
func (b *BinPacker) place(key groupKey, off *flexoffer.FlexOffer) subgroupID {
	for _, id := range b.byGroup[key] {
		sg := b.subgroups[id]
		if b.opts.fits(len(sg.members), sg.energy, off) {
			sg.members[off.ID] = off
			sg.energy += absTotalMax(off)
			b.byOffer[off.ID] = id
			return id
		}
	}
	b.seq[key]++
	id := subgroupID{key: key, seq: b.seq[key]}
	sg := &subgroup{members: map[flexoffer.ID]*flexoffer.FlexOffer{off.ID: off}, energy: absTotalMax(off)}
	b.subgroups[id] = sg
	b.byGroup[key] = append(b.byGroup[key], id)
	b.byOffer[off.ID] = id
	return id
}

func removeSubgroupID(ids []subgroupID, id subgroupID) []subgroupID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// NumSubgroups returns the current number of sub-groups.
func (b *BinPacker) NumSubgroups() int { return len(b.subgroups) }

// passthrough converts group deltas straight into sub-group deltas (one
// sub-group per group) when the bin-packer is disabled.
func passthrough(groups []groupUpdate) []subgroupUpdate {
	out := make([]subgroupUpdate, len(groups))
	for i, gu := range groups {
		su := subgroupUpdate{id: subgroupID{key: gu.key}, added: gu.added}
		if len(gu.removed) > 0 {
			su.removed = make([]flexoffer.ID, len(gu.removed))
			for j, off := range gu.removed {
				su.removed[j] = off.ID
			}
		}
		out[i] = su
	}
	return out
}
