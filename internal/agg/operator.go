package agg

import (
	"fmt"
	"math"
	"sort"

	"mirabel/internal/flexoffer"
)

// This file implements the generalized grouping operator the paper lists
// under research directions (§4): "generalize flex-offer aggregation
// approaches into a multi-criteria grouping operator and a user defined
// aggregation operator for a relational database management system". The
// operator groups flex-offers by arbitrary user-defined attributes with
// per-attribute tolerances — covering "additional types of flexibility,
// e.g., price, energy interval duration, or power flexibilities" — and
// aggregates each group n-to-1. Unlike the incremental Pipeline it is a
// one-shot, set-oriented operator, the shape a DBMS GROUP BY would take.

// Criterion is one user-defined grouping attribute.
type Criterion struct {
	// Name identifies the attribute in diagnostics.
	Name string
	// Extract computes the attribute value of an offer.
	Extract func(*flexoffer.FlexOffer) float64
	// Tolerance is the maximum deviation within a group; 0 demands
	// exact equality.
	Tolerance float64
}

// Standard criteria. Each returns a Criterion with the given tolerance.

// ByEarliestStart groups by the start-after time (slots).
func ByEarliestStart(tol float64) Criterion {
	return Criterion{
		Name:      "earliest_start",
		Extract:   func(f *flexoffer.FlexOffer) float64 { return float64(f.EarliestStart) },
		Tolerance: tol,
	}
}

// ByTimeFlexibility groups by the time flexibility interval (slots).
func ByTimeFlexibility(tol float64) Criterion {
	return Criterion{
		Name:      "time_flexibility",
		Extract:   func(f *flexoffer.FlexOffer) float64 { return float64(f.TimeFlexibility()) },
		Tolerance: tol,
	}
}

// ByDuration groups by the profile duration (slots) — the paper's
// "energy interval duration" flexibility.
func ByDuration(tol float64) Criterion {
	return Criterion{
		Name:      "duration",
		Extract:   func(f *flexoffer.FlexOffer) float64 { return float64(f.NumSlices()) },
		Tolerance: tol,
	}
}

// ByEnergyFlexibility groups by the dispatchable energy (kWh).
func ByEnergyFlexibility(tol float64) Criterion {
	return Criterion{
		Name:      "energy_flexibility",
		Extract:   (*flexoffer.FlexOffer).EnergyFlexibility,
		Tolerance: tol,
	}
}

// ByPrice groups by the activation price (EUR/kWh) — the paper's price
// flexibility.
func ByPrice(tol float64) Criterion {
	return Criterion{
		Name:      "price",
		Extract:   func(f *flexoffer.FlexOffer) float64 { return f.CostPerKWh },
		Tolerance: tol,
	}
}

// ByPeakPower groups by the maximum per-slot energy (the power
// flexibility dimension).
func ByPeakPower(tol float64) Criterion {
	return Criterion{
		Name: "peak_power",
		Extract: func(f *flexoffer.FlexOffer) float64 {
			var mx float64
			for _, sl := range f.Profile {
				if a := math.Abs(sl.EnergyMax); a > mx {
					mx = a
				}
			}
			return mx
		},
		Tolerance: tol,
	}
}

// GroupBy partitions offers into disjoint groups such that within one
// group every criterion's values deviate by no more than its tolerance.
// Offers are sorted by the first criterion and split greedily, then the
// procedure recurses on the remaining criteria — a deterministic sweep
// that guarantees the tolerance invariant (unlike independent bucket
// quantization, values near bucket borders never exceed the tolerance).
func GroupBy(offers []*flexoffer.FlexOffer, criteria []Criterion) ([][]*flexoffer.FlexOffer, error) {
	if len(criteria) == 0 {
		return nil, fmt.Errorf("agg: GroupBy needs at least one criterion")
	}
	for i, c := range criteria {
		if c.Extract == nil {
			return nil, fmt.Errorf("agg: criterion %d (%s) has no extractor", i, c.Name)
		}
		if c.Tolerance < 0 {
			return nil, fmt.Errorf("agg: criterion %d (%s) has negative tolerance", i, c.Name)
		}
	}
	groups := [][]*flexoffer.FlexOffer{append([]*flexoffer.FlexOffer(nil), offers...)}
	for _, c := range criteria {
		var next [][]*flexoffer.FlexOffer
		for _, g := range groups {
			next = append(next, splitByCriterion(g, c)...)
		}
		groups = next
	}
	return groups, nil
}

// splitByCriterion splits one group so that the criterion's spread stays
// within tolerance: sort by value, start a new group whenever the value
// leaves the window anchored at the current group's minimum.
func splitByCriterion(g []*flexoffer.FlexOffer, c Criterion) [][]*flexoffer.FlexOffer {
	if len(g) <= 1 {
		if len(g) == 0 {
			return nil
		}
		return [][]*flexoffer.FlexOffer{g}
	}
	type kv struct {
		f *flexoffer.FlexOffer
		v float64
	}
	vals := make([]kv, len(g))
	for i, f := range g {
		vals[i] = kv{f, c.Extract(f)}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })

	var out [][]*flexoffer.FlexOffer
	anchor := vals[0].v
	cur := []*flexoffer.FlexOffer{vals[0].f}
	for _, x := range vals[1:] {
		if x.v-anchor > c.Tolerance {
			out = append(out, cur)
			cur = nil
			anchor = x.v
		}
		cur = append(cur, x.f)
	}
	return append(out, cur)
}

// AggregateGroups applies the n-to-1 aggregation to every group from
// scratch, assigning sequential macro IDs starting at firstID.
func AggregateGroups(groups [][]*flexoffer.FlexOffer, firstID flexoffer.ID) []*Aggregate {
	out := make([]*Aggregate, 0, len(groups))
	id := firstID
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		out = append(out, buildAggregate(id, append([]*flexoffer.FlexOffer(nil), g...)))
		id++
	}
	return out
}
