package agg

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mirabel/internal/flexoffer"
)

// NTo1 is the n-to-1 aggregator: it maintains exactly one aggregated
// flex-offer per (sub-)group and emits created/deleted/changed aggregate
// updates. It also performs disaggregation.
type NTo1 struct {
	nextID     flexoffer.ID
	aggregates map[subgroupID]*Aggregate
	byAggID    map[flexoffer.ID]*Aggregate
}

// NewNTo1 returns an empty n-to-1 aggregator.
func NewNTo1() *NTo1 {
	return &NTo1{
		nextID:     1,
		aggregates: make(map[subgroupID]*Aggregate),
		byAggID:    make(map[flexoffer.ID]*Aggregate),
	}
}

// aggTask is one sub-group's batch transaction. Tasks touch disjoint
// aggregates (one sub-group maps to one aggregate), so they can run on
// any worker in any order with identical results.
type aggTask struct {
	sub     subgroupUpdate
	a       *Aggregate
	created bool
	alive   bool
}

// Process applies sub-group deltas serially.
func (n *NTo1) Process(updates []subgroupUpdate) []AggregateUpdate {
	return n.process(updates, 1)
}

// process applies sub-group deltas, each as one batched transaction per
// touched aggregate, fanning the per-aggregate work across up to the
// given number of workers. The result is independent of the worker
// count: updates are sorted, aggregate IDs are assigned serially before
// the fan-out, and each task mutates only its own aggregate.
func (n *NTo1) process(updates []subgroupUpdate, workers int) []AggregateUpdate {
	if len(updates) == 0 {
		return nil
	}
	sortSubgroupUpdates(updates)

	// Serial classification: resolve existing aggregates and assign new
	// macro flex-offer IDs in deterministic order.
	tasks := make([]*aggTask, 0, len(updates))
	for _, u := range updates {
		a, exists := n.aggregates[u.id]
		if !exists {
			if len(u.added) == 0 {
				continue // removals for an already-gone aggregate
			}
			tasks = append(tasks, &aggTask{sub: u, created: true, a: &Aggregate{
				Offer: &flexoffer.FlexOffer{ID: n.nextID},
			}})
			n.nextID++
			continue
		}
		tasks = append(tasks, &aggTask{sub: u, a: a})
	}

	// Parallel phase: each task builds or batch-updates one aggregate.
	run := func(t *aggTask) {
		if t.created {
			id := t.a.Offer.ID
			t.a = buildAggregate(id, t.sub.added)
			t.alive = true
			return
		}
		t.alive = t.a.applyBatch(t.sub.added, t.sub.removed)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			run(t)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					run(tasks[i])
				}
			}()
		}
		wg.Wait()
	}

	// Serial commit in task order.
	out := make([]AggregateUpdate, 0, len(tasks))
	for _, t := range tasks {
		switch {
		case t.created:
			n.aggregates[t.sub.id] = t.a
			n.byAggID[t.a.Offer.ID] = t.a
			out = append(out, AggregateUpdate{Kind: Created, Aggregate: t.a})
		case !t.alive:
			delete(n.aggregates, t.sub.id)
			delete(n.byAggID, t.a.Offer.ID)
			out = append(out, AggregateUpdate{Kind: Deleted, Aggregate: t.a})
		default:
			out = append(out, AggregateUpdate{Kind: Changed, Aggregate: t.a})
		}
	}
	return out
}

// Aggregates returns all live aggregates ordered by macro flex-offer ID.
func (n *NTo1) Aggregates() []*Aggregate {
	out := make([]*Aggregate, 0, len(n.aggregates))
	for _, a := range n.aggregates {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offer.ID < out[j].Offer.ID })
	return out
}

// Lookup returns the aggregate with the given macro flex-offer ID.
func (n *NTo1) Lookup(id flexoffer.ID) (*Aggregate, bool) {
	a, ok := n.byAggID[id]
	return a, ok
}

// Pipeline chains group-builder, optional bin-packer and n-to-1
// aggregator exactly as in the paper ("these sub-components are chained
// so that provided flex-offer updates traverse them sequentially").
// Intake accumulates; Process runs the whole chain once per batch.
type Pipeline struct {
	GroupBuilder *GroupBuilder
	BinPacker    *BinPacker // nil when disabled
	Aggregator   *NTo1

	// Workers bounds the parallel per-sub-group aggregation fan-out in
	// Process; values ≤ 1 run serially. Results are identical at any
	// worker count.
	Workers int
}

// NewPipeline assembles an aggregation pipeline. Pass a zero
// BinPackerOptions to disable the bin-packer (the paper's experiments ran
// with it disabled); groups then map to aggregates one-to-one.
func NewPipeline(params Params, binOpts BinPackerOptions) *Pipeline {
	p := &Pipeline{
		GroupBuilder: NewGroupBuilder(params),
		Aggregator:   NewNTo1(),
	}
	if binOpts.enabled() {
		p.BinPacker = NewBinPacker(binOpts)
	}
	return p
}

// Accumulate validates and queues flex-offer updates without processing
// them — the intake half of the paper's accumulate-then-process design.
// On error nothing is queued.
func (p *Pipeline) Accumulate(updates ...FlexOfferUpdate) error {
	return p.GroupBuilder.Accumulate(updates...)
}

// Process pushes every accumulated update through the pipeline as one
// batch and returns the resulting aggregate updates. It cannot fail:
// all validation happened in Accumulate.
func (p *Pipeline) Process() []AggregateUpdate {
	groups := p.GroupBuilder.Process()
	if len(groups) == 0 {
		return nil
	}
	var subs []subgroupUpdate
	if p.BinPacker != nil {
		subs = p.BinPacker.Process(groups)
	} else {
		subs = passthrough(groups)
	}
	return p.Aggregator.process(subs, p.Workers)
}

// Apply is Accumulate followed immediately by Process — the one-call
// form for tests, tools and synchronous callers.
func (p *Pipeline) Apply(updates ...FlexOfferUpdate) ([]AggregateUpdate, error) {
	if err := p.GroupBuilder.Accumulate(updates...); err != nil {
		return nil, err
	}
	return p.Process(), nil
}

// Contains reports whether the offer id is live in the pipeline (applied
// or pending insertion).
func (p *Pipeline) Contains(id flexoffer.ID) bool { return p.GroupBuilder.Contains(id) }

// NumPending returns the number of accumulated-but-unprocessed updates.
func (p *Pipeline) NumPending() int { return p.GroupBuilder.NumPending() }

// Aggregates returns the current macro flex-offers.
func (p *Pipeline) Aggregates() []*Aggregate { return p.Aggregator.Aggregates() }

// Disaggregate converts schedules of macro flex-offers into schedules of
// all their member micro flex-offers.
func (p *Pipeline) Disaggregate(scheds []*flexoffer.Schedule) ([]*flexoffer.Schedule, error) {
	var out []*flexoffer.Schedule
	for _, s := range scheds {
		a, ok := p.Aggregator.Lookup(s.OfferID)
		if !ok {
			return nil, fmt.Errorf("agg: no aggregate with id %d", s.OfferID)
		}
		ms, err := a.Disaggregate(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// Metrics summarizes the current aggregation state for the compression /
// flexibility trade-off analysis (paper Figures 5a and 5c).
type Metrics struct {
	FlexOffers       int     // micro flex-offers aggregated
	Aggregates       int     // macro flex-offers
	CompressionRatio float64 // FlexOffers / Aggregates
	// TotalTimeFlexLoss is Σ over members of (TF_member − TF_aggregate),
	// in slots; LossPerOffer is the same divided by FlexOffers.
	TotalTimeFlexLoss flexoffer.Time
	LossPerOffer      float64
}

// CurrentMetrics computes Metrics for the pipeline's live aggregates.
func (p *Pipeline) CurrentMetrics() Metrics {
	m := Metrics{}
	for _, a := range p.Aggregator.aggregates {
		m.Aggregates++
		m.FlexOffers += a.NumMembers()
		m.TotalTimeFlexLoss += a.TimeFlexibilityLoss()
	}
	if m.Aggregates > 0 {
		m.CompressionRatio = float64(m.FlexOffers) / float64(m.Aggregates)
	}
	if m.FlexOffers > 0 {
		m.LossPerOffer = float64(m.TotalTimeFlexLoss) / float64(m.FlexOffers)
	}
	return m
}
