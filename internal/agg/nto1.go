package agg

import (
	"fmt"
	"sort"

	"mirabel/internal/flexoffer"
)

// NTo1 is the n-to-1 aggregator: it maintains exactly one aggregated
// flex-offer per (sub-)group and emits created/deleted/changed aggregate
// updates. It also performs disaggregation.
type NTo1 struct {
	nextID     flexoffer.ID
	aggregates map[subgroupID]*Aggregate
	byAggID    map[flexoffer.ID]*Aggregate
}

// NewNTo1 returns an empty n-to-1 aggregator.
func NewNTo1() *NTo1 {
	return &NTo1{
		nextID:     1,
		aggregates: make(map[subgroupID]*Aggregate),
		byAggID:    make(map[flexoffer.ID]*Aggregate),
	}
}

// Process applies sub-group deltas to the maintained aggregates and
// returns aggregated flex-offer updates.
func (n *NTo1) Process(updates []subgroupUpdate) []AggregateUpdate {
	var out []AggregateUpdate
	for _, u := range updates {
		a, exists := n.aggregates[u.id]
		switch {
		case !exists && len(u.added) == 0:
			continue // removals for an already-gone aggregate
		case !exists:
			// Build incrementally, one member at a time — the per-offer
			// profile traversal is the aggregation cost the experiments
			// measure.
			a = newAggregate(n.nextID, u.added[0])
			for _, m := range u.added[1:] {
				a.add(m)
			}
			n.nextID++
			n.aggregates[u.id] = a
			n.byAggID[a.Offer.ID] = a
			out = append(out, AggregateUpdate{Kind: Created, Aggregate: a})
		default:
			alive := true
			for _, id := range u.removed {
				if !a.remove(id) {
					alive = false
					break
				}
			}
			if !alive && len(u.added) == 0 {
				delete(n.aggregates, u.id)
				delete(n.byAggID, a.Offer.ID)
				out = append(out, AggregateUpdate{Kind: Deleted, Aggregate: a})
				continue
			}
			if !alive { // emptied, then refilled within the same batch
				*a = *buildAggregate(a.Offer.ID, append([]*flexoffer.FlexOffer(nil), u.added...))
				out = append(out, AggregateUpdate{Kind: Changed, Aggregate: a})
				continue
			}
			for _, m := range u.added {
				a.add(m)
			}
			out = append(out, AggregateUpdate{Kind: Changed, Aggregate: a})
		}
	}
	return out
}

// Aggregates returns all live aggregates ordered by macro flex-offer ID.
func (n *NTo1) Aggregates() []*Aggregate {
	out := make([]*Aggregate, 0, len(n.aggregates))
	for _, a := range n.aggregates {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offer.ID < out[j].Offer.ID })
	return out
}

// Lookup returns the aggregate with the given macro flex-offer ID.
func (n *NTo1) Lookup(id flexoffer.ID) (*Aggregate, bool) {
	a, ok := n.byAggID[id]
	return a, ok
}

// Pipeline chains group-builder, optional bin-packer and n-to-1
// aggregator exactly as in the paper ("these sub-components are chained
// so that provided flex-offer updates traverse them sequentially").
type Pipeline struct {
	GroupBuilder *GroupBuilder
	BinPacker    *BinPacker // nil when disabled
	Aggregator   *NTo1
}

// NewPipeline assembles an aggregation pipeline. Pass a zero
// BinPackerOptions to disable the bin-packer (the paper's experiments ran
// with it disabled); groups then map to aggregates one-to-one.
func NewPipeline(params Params, binOpts BinPackerOptions) *Pipeline {
	p := &Pipeline{
		GroupBuilder: NewGroupBuilder(params),
		Aggregator:   NewNTo1(),
	}
	if binOpts.enabled() {
		p.BinPacker = NewBinPacker(binOpts)
	}
	return p
}

// Apply pushes flex-offer updates through the pipeline and returns the
// resulting aggregate updates.
func (p *Pipeline) Apply(updates ...FlexOfferUpdate) ([]AggregateUpdate, error) {
	p.GroupBuilder.Accumulate(updates...)
	groups, err := p.GroupBuilder.Process()
	if err != nil {
		return nil, err
	}
	var subs []subgroupUpdate
	if p.BinPacker != nil {
		subs = p.BinPacker.Process(groups)
	} else {
		subs = passthrough(groups)
	}
	return p.Aggregator.Process(subs), nil
}

// Aggregates returns the current macro flex-offers.
func (p *Pipeline) Aggregates() []*Aggregate { return p.Aggregator.Aggregates() }

// Disaggregate converts schedules of macro flex-offers into schedules of
// all their member micro flex-offers.
func (p *Pipeline) Disaggregate(scheds []*flexoffer.Schedule) ([]*flexoffer.Schedule, error) {
	var out []*flexoffer.Schedule
	for _, s := range scheds {
		a, ok := p.Aggregator.Lookup(s.OfferID)
		if !ok {
			return nil, fmt.Errorf("agg: no aggregate with id %d", s.OfferID)
		}
		ms, err := a.Disaggregate(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// Metrics summarizes the current aggregation state for the compression /
// flexibility trade-off analysis (paper Figures 5a and 5c).
type Metrics struct {
	FlexOffers       int     // micro flex-offers aggregated
	Aggregates       int     // macro flex-offers
	CompressionRatio float64 // FlexOffers / Aggregates
	// TotalTimeFlexLoss is Σ over members of (TF_member − TF_aggregate),
	// in slots; LossPerOffer is the same divided by FlexOffers.
	TotalTimeFlexLoss flexoffer.Time
	LossPerOffer      float64
}

// CurrentMetrics computes Metrics for the pipeline's live aggregates.
func (p *Pipeline) CurrentMetrics() Metrics {
	m := Metrics{}
	for _, a := range p.Aggregator.aggregates {
		m.Aggregates++
		m.FlexOffers += a.NumMembers()
		m.TotalTimeFlexLoss += a.TimeFlexibilityLoss()
	}
	if m.Aggregates > 0 {
		m.CompressionRatio = float64(m.FlexOffers) / float64(m.Aggregates)
	}
	if m.FlexOffers > 0 {
		m.LossPerOffer = float64(m.TotalTimeFlexLoss) / float64(m.FlexOffers)
	}
	return m
}
