// Package agg implements the MIRABEL aggregation component (paper §4):
// it turns a very large set of micro flex-offers into a substantially
// smaller set of macro (aggregated) flex-offers that the scheduling
// component can handle, and disaggregates scheduled macro flex-offers
// back into valid schedules for every micro flex-offer.
//
// The component is the three-stage pipeline of the paper:
//
//	flex-offer updates → group-builder → bin-packer (optional) → n-to-1 aggregator → aggregate updates
//
// and satisfies the paper's four requirements:
//
//   - Disaggregation requirement — any schedule of an aggregate can be
//     turned into schedules of its members that respect every original
//     constraint (guaranteed by conservative start-alignment; see
//     aggregate.go and the property tests).
//   - Compression requirement — grouping thresholds control how many
//     aggregates result.
//   - Flexibility requirement — the time-flexibility loss is measurable
//     (Metrics) and bounded by the thresholds.
//   - Efficiency requirement — aggregation is incremental: inserting or
//     deleting flex-offers produces created/changed/deleted aggregate
//     deltas without recomputing untouched aggregates.
package agg

import (
	"fmt"

	"mirabel/internal/flexoffer"
)

// Params are the user-defined aggregation thresholds (paper §4: "duration
// tolerance, start after tolerance"). Two flex-offers may be aggregated
// together only if their attribute values deviate by no more than these
// tolerances. A zero tolerance demands exact equality; a negative
// DurationTolerance ignores the attribute entirely.
type Params struct {
	// StartAfterTolerance bounds the spread of earliest start times
	// (slots) inside one aggregate.
	StartAfterTolerance flexoffer.Time
	// TimeFlexTolerance bounds the spread of time flexibilities (slots)
	// inside one aggregate.
	TimeFlexTolerance flexoffer.Time
	// DurationTolerance bounds the spread of profile durations (slots);
	// negative means "do not group by duration".
	DurationTolerance int
}

// The four threshold combinations of the paper's aggregation experiment
// (§9): P0 demands equal start-after time and time flexibility; P1 allows
// small time-flexibility variation; P2 allows small start-after variation;
// P3 allows both. "Small" is two hours (8 slots), which spans the jitter
// of the workload generator's device classes.
var (
	ParamsP0 = Params{StartAfterTolerance: 0, TimeFlexTolerance: 0, DurationTolerance: -1}
	ParamsP1 = Params{StartAfterTolerance: 0, TimeFlexTolerance: 8, DurationTolerance: -1}
	ParamsP2 = Params{StartAfterTolerance: 8, TimeFlexTolerance: 0, DurationTolerance: -1}
	ParamsP3 = Params{StartAfterTolerance: 8, TimeFlexTolerance: 8, DurationTolerance: -1}
)

// groupKey identifies a set of flex-offers similar under Params.
type groupKey struct {
	es, tf int64
	dur    int
}

// keyOf quantizes the grouping attributes by the tolerances.
func (p Params) keyOf(f *flexoffer.FlexOffer) groupKey {
	k := groupKey{es: int64(f.EarliestStart), tf: int64(f.TimeFlexibility())}
	if p.StartAfterTolerance > 0 {
		k.es = int64(f.EarliestStart) / int64(p.StartAfterTolerance)
	}
	if p.TimeFlexTolerance > 0 {
		k.tf = int64(f.TimeFlexibility()) / int64(p.TimeFlexTolerance)
	}
	switch {
	case p.DurationTolerance < 0:
		k.dur = 0
	case p.DurationTolerance == 0:
		k.dur = f.NumSlices()
	default:
		k.dur = f.NumSlices() / (p.DurationTolerance + 1)
	}
	return k
}

// UpdateKind discriminates flex-offer updates flowing into the pipeline.
type UpdateKind int

const (
	// Insert adds a flex-offer (a newly accepted offer).
	Insert UpdateKind = iota
	// Delete removes a flex-offer (expired or withdrawn).
	Delete
)

// String implements fmt.Stringer.
func (k UpdateKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("UpdateKind(%d)", int(k))
	}
}

// FlexOfferUpdate is one element of the update stream the aggregation
// component accepts ("information about accepted or expiring
// flex-offers").
type FlexOfferUpdate struct {
	Kind  UpdateKind
	Offer *flexoffer.FlexOffer
}

// ChangeKind discriminates aggregate updates flowing out of the pipeline.
type ChangeKind int

const (
	// Created: a new aggregated flex-offer appeared.
	Created ChangeKind = iota
	// Changed: an existing aggregated flex-offer gained/lost members.
	Changed
	// Deleted: an aggregated flex-offer lost all members.
	Deleted
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case Created:
		return "created"
	case Changed:
		return "changed"
	case Deleted:
		return "deleted"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// AggregateUpdate is one delta of the aggregated flex-offer set.
type AggregateUpdate struct {
	Kind      ChangeKind
	Aggregate *Aggregate
}
