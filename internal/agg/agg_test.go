package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mirabel/internal/flexoffer"
)

// offer builds a simple test offer with constant per-slice bounds.
func offer(id flexoffer.ID, es, tf flexoffer.Time, slices int, emin, emax float64) *flexoffer.FlexOffer {
	p := make([]flexoffer.Slice, slices)
	for i := range p {
		p[i] = flexoffer.Slice{EnergyMin: emin, EnergyMax: emax}
	}
	return &flexoffer.FlexOffer{
		ID: id, EarliestStart: es, LatestStart: es + tf, AssignBefore: es - 4, Profile: p,
	}
}

func inserts(offers ...*flexoffer.FlexOffer) []FlexOfferUpdate {
	out := make([]FlexOfferUpdate, len(offers))
	for i, f := range offers {
		out[i] = FlexOfferUpdate{Kind: Insert, Offer: f}
	}
	return out
}

func TestSingleOfferAggregateEqualsOffer(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	f := offer(1, 100, 8, 4, 1, 2)
	ups, err := p.Apply(inserts(f)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0].Kind != Created {
		t.Fatalf("updates = %+v", ups)
	}
	a := ups[0].Aggregate.Offer
	if a.EarliestStart != 100 || a.TimeFlexibility() != 8 || a.NumSlices() != 4 {
		t.Errorf("aggregate = %v", a)
	}
	if a.MinTotalEnergy() != 4 || a.MaxTotalEnergy() != 8 {
		t.Errorf("aggregate energies = [%g, %g]", a.MinTotalEnergy(), a.MaxTotalEnergy())
	}
}

func TestIdenticalOffersSumProfiles(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	fs := []*flexoffer.FlexOffer{
		offer(1, 100, 8, 4, 1, 2),
		offer(2, 100, 8, 4, 1, 2),
		offer(3, 100, 8, 4, 1, 2),
	}
	if _, err := p.Apply(inserts(fs...)...); err != nil {
		t.Fatal(err)
	}
	aggs := p.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	a := aggs[0].Offer
	if a.Profile[0].EnergyMin != 3 || a.Profile[0].EnergyMax != 6 {
		t.Errorf("summed slice = %+v", a.Profile[0])
	}
	if a.TimeFlexibility() != 8 {
		t.Errorf("TF = %d, want 8 (no loss for identical offers)", a.TimeFlexibility())
	}
	if loss := aggs[0].TimeFlexibilityLoss(); loss != 0 {
		t.Errorf("flexibility loss = %d, want 0", loss)
	}
}

func TestP0RequiresExactMatch(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	if _, err := p.Apply(inserts(
		offer(1, 100, 8, 4, 1, 2),
		offer(2, 101, 8, 4, 1, 2), // ES differs
		offer(3, 100, 9, 4, 1, 2), // TF differs
	)...); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Aggregates()); got != 3 {
		t.Errorf("aggregates = %d, want 3 (no grouping under P0)", got)
	}
}

func TestToleranceGroupsNearbyOffers(t *testing.T) {
	p := NewPipeline(Params{StartAfterTolerance: 8, TimeFlexTolerance: 0, DurationTolerance: -1}, BinPackerOptions{})
	if _, err := p.Apply(inserts(
		offer(1, 100, 8, 4, 1, 2),
		offer(2, 103, 8, 4, 1, 2), // within the same ES bucket (96..103)
	)...); err != nil {
		t.Fatal(err)
	}
	aggs := p.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	a := aggs[0].Offer
	// Start-alignment: profile spans offsets 4..4+4 for the later offer.
	if a.EarliestStart != 100 || a.NumSlices() != 7 {
		t.Errorf("aggregate es=%d slices=%d, want 100, 7", a.EarliestStart, a.NumSlices())
	}
	// Middle slot 3..3 covers only offer 2's first slice? Offset of
	// offer 2 is 3, so slots 3..6 hold its profile; slots 0..3 offer 1.
	if a.Profile[0].EnergyMax != 2 || a.Profile[3].EnergyMax != 4 || a.Profile[6].EnergyMax != 2 {
		t.Errorf("profile = %+v", a.Profile)
	}
}

func TestAggregateConservativeTimeFlexibility(t *testing.T) {
	p := NewPipeline(Params{TimeFlexTolerance: 16, DurationTolerance: -1}, BinPackerOptions{})
	if _, err := p.Apply(inserts(
		offer(1, 100, 2, 4, 1, 2),
		offer(2, 100, 10, 4, 1, 2),
	)...); err != nil {
		t.Fatal(err)
	}
	aggs := p.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d", len(aggs))
	}
	if tf := aggs[0].Offer.TimeFlexibility(); tf != 2 {
		t.Errorf("aggregate TF = %d, want min member TF 2", tf)
	}
	if loss := aggs[0].TimeFlexibilityLoss(); loss != 8 {
		t.Errorf("loss = %d, want 8", loss)
	}
}

func TestDeleteShrinksAndRemovesAggregates(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	f1 := offer(1, 100, 8, 4, 1, 2)
	f2 := offer(2, 100, 8, 4, 1, 2)
	if _, err := p.Apply(inserts(f1, f2)...); err != nil {
		t.Fatal(err)
	}
	ups, err := p.Apply(FlexOfferUpdate{Kind: Delete, Offer: f1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0].Kind != Changed {
		t.Fatalf("after first delete: %+v", ups)
	}
	if ups[0].Aggregate.Offer.Profile[0].EnergyMax != 2 {
		t.Errorf("profile not shrunk: %+v", ups[0].Aggregate.Offer.Profile[0])
	}
	ups, err = p.Apply(FlexOfferUpdate{Kind: Delete, Offer: f2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 1 || ups[0].Kind != Deleted {
		t.Fatalf("after second delete: %+v", ups)
	}
	if len(p.Aggregates()) != 0 {
		t.Error("aggregates remain after deleting all offers")
	}
}

func TestDeleteUnknownOfferErrors(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	if _, err := p.Apply(FlexOfferUpdate{Kind: Delete, Offer: offer(9, 0, 0, 1, 0, 1)}); err == nil {
		t.Error("deleting unknown offer should error")
	}
}

func TestDuplicateInsertErrors(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	f := offer(1, 100, 8, 4, 1, 2)
	if _, err := p.Apply(inserts(f, f)...); err == nil {
		t.Error("duplicate insert should error")
	}
}

func TestInvalidOfferRejected(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	bad := offer(1, 100, 8, 4, 1, 2)
	bad.LatestStart = 50
	if _, err := p.Apply(FlexOfferUpdate{Kind: Insert, Offer: bad}); err == nil {
		t.Error("invalid offer should be rejected")
	}
}

func TestBinPackerMaxMembers(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{MaxMembers: 2})
	var fs []*flexoffer.FlexOffer
	for i := 1; i <= 5; i++ {
		fs = append(fs, offer(flexoffer.ID(i), 100, 8, 4, 1, 2))
	}
	if _, err := p.Apply(inserts(fs...)...); err != nil {
		t.Fatal(err)
	}
	aggs := p.Aggregates()
	if len(aggs) != 3 {
		t.Fatalf("aggregates = %d, want 3 (2+2+1)", len(aggs))
	}
	for _, a := range aggs {
		if a.NumMembers() > 2 {
			t.Errorf("aggregate has %d members, cap is 2", a.NumMembers())
		}
	}
}

func TestBinPackerMaxEnergy(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{MaxEnergyKWh: 20})
	var fs []*flexoffer.FlexOffer
	for i := 1; i <= 4; i++ {
		fs = append(fs, offer(flexoffer.ID(i), 100, 8, 4, 1, 2)) // 8 kWh max each
	}
	if _, err := p.Apply(inserts(fs...)...); err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Aggregates() {
		var e float64
		for _, m := range a.Members() {
			e += m.MaxTotalEnergy()
		}
		if e > 20 {
			t.Errorf("aggregate energy %g exceeds 20 kWh cap", e)
		}
	}
}

func TestDisaggregationExactEnergy(t *testing.T) {
	p := NewPipeline(ParamsP3, BinPackerOptions{})
	fs := []*flexoffer.FlexOffer{
		offer(1, 100, 8, 4, 1, 3),
		offer(2, 102, 10, 3, 0, 2),
		offer(3, 101, 9, 5, 2, 2), // zero energy flexibility
	}
	if _, err := p.Apply(inserts(fs...)...); err != nil {
		t.Fatal(err)
	}
	aggs := p.Aggregates()
	if len(aggs) != 1 {
		t.Fatalf("aggregates = %d, want 1", len(aggs))
	}
	a := aggs[0]
	// Schedule the aggregate at a mid shift with mid energies.
	sched := &flexoffer.Schedule{
		OfferID: a.Offer.ID,
		Start:   a.Offer.EarliestStart + a.Offer.TimeFlexibility()/2,
		Energy:  make([]float64, a.Offer.NumSlices()),
	}
	for j, sl := range a.Offer.Profile {
		sched.Energy[j] = (sl.EnergyMin + sl.EnergyMax) / 2
	}
	members, err := a.Disaggregate(sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 3 {
		t.Fatalf("member schedules = %d", len(members))
	}
	// Slot-wise sums of member schedules must equal the aggregate
	// schedule exactly.
	sums := make(map[flexoffer.Time]float64)
	for _, ms := range members {
		for j, e := range ms.Energy {
			sums[ms.Start+flexoffer.Time(j)] += e
		}
	}
	for j, e := range sched.Energy {
		slot := sched.Start + flexoffer.Time(j)
		if d := sums[slot] - e; d > 1e-9 || d < -1e-9 {
			t.Errorf("slot %d: member sum %g != aggregate %g", slot, sums[slot], e)
		}
	}
}

func TestDisaggregateRejectsInvalidAggregateSchedule(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	f := offer(1, 100, 8, 2, 1, 2)
	if _, err := p.Apply(inserts(f)...); err != nil {
		t.Fatal(err)
	}
	a := p.Aggregates()[0]
	bad := &flexoffer.Schedule{OfferID: a.Offer.ID, Start: a.Offer.LatestStart + 1, Energy: []float64{1, 1}}
	if _, err := a.Disaggregate(bad); err == nil {
		t.Error("invalid aggregate schedule accepted")
	}
}

func TestPipelineDisaggregateUnknownID(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	if _, err := p.Disaggregate([]*flexoffer.Schedule{{OfferID: 42}}); err == nil {
		t.Error("unknown aggregate id accepted")
	}
}

// randomOffers builds n random valid offers clustered enough for P3 to
// group some of them.
func randomOffers(rng *rand.Rand, n int) []*flexoffer.FlexOffer {
	out := make([]*flexoffer.FlexOffer, n)
	for i := range out {
		slices := 1 + rng.Intn(6)
		p := make([]flexoffer.Slice, slices)
		for j := range p {
			lo := rng.Float64() * 2
			p[j] = flexoffer.Slice{EnergyMin: lo, EnergyMax: lo + rng.Float64()*2}
		}
		es := flexoffer.Time(rng.Intn(64))
		out[i] = &flexoffer.FlexOffer{
			ID:            flexoffer.ID(i + 1),
			EarliestStart: es,
			LatestStart:   es + flexoffer.Time(rng.Intn(24)),
			AssignBefore:  es,
			Profile:       p,
		}
	}
	return out
}

// Property: the disaggregation requirement — for random offer sets and
// random valid aggregate schedules, disaggregation yields schedules that
// satisfy every member constraint and reproduce the aggregate energy.
func TestPropertyDisaggregationRequirement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPipeline(ParamsP3, BinPackerOptions{})
		if _, err := p.Apply(inserts(randomOffers(rng, 40)...)...); err != nil {
			return false
		}
		for _, a := range p.Aggregates() {
			// Random feasible schedule of the aggregate.
			tf := int(a.Offer.TimeFlexibility())
			start := a.Offer.EarliestStart + flexoffer.Time(rng.Intn(tf+1))
			energy := make([]float64, a.Offer.NumSlices())
			for j, sl := range a.Offer.Profile {
				energy[j] = sl.EnergyMin + rng.Float64()*(sl.EnergyMax-sl.EnergyMin)
			}
			sched := &flexoffer.Schedule{OfferID: a.Offer.ID, Start: start, Energy: energy}
			members, err := a.Disaggregate(sched)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			// Disaggregate validates members internally; check sums here.
			sums := make(map[flexoffer.Time]float64)
			for _, ms := range members {
				for j, e := range ms.Energy {
					sums[ms.Start+flexoffer.Time(j)] += e
				}
			}
			for j, e := range energy {
				slot := start + flexoffer.Time(j)
				if d := sums[slot] - e; d > 1e-6 || d < -1e-6 {
					t.Logf("seed %d: slot %d sum %g != %g", seed, slot, sums[slot], e)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: incremental maintenance is equivalent to from-scratch
// aggregation — inserting offers in two batches (with some interleaved
// deletes) yields the same aggregate contents as one batch of the
// survivors.
func TestPropertyIncrementalEqualsFromScratch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		offers := randomOffers(rng, 60)
		// Incremental: first half, then deletes of a third of those, then
		// second half.
		inc := NewPipeline(ParamsP3, BinPackerOptions{})
		if _, err := inc.Apply(inserts(offers[:30]...)...); err != nil {
			return false
		}
		var deletes []FlexOfferUpdate
		deleted := map[flexoffer.ID]bool{}
		for i := 0; i < 10; i++ {
			deletes = append(deletes, FlexOfferUpdate{Kind: Delete, Offer: offers[i*3]})
			deleted[offers[i*3].ID] = true
		}
		if _, err := inc.Apply(deletes...); err != nil {
			return false
		}
		if _, err := inc.Apply(inserts(offers[30:]...)...); err != nil {
			return false
		}
		// From scratch with the survivors.
		var survivors []*flexoffer.FlexOffer
		for _, f := range offers {
			if !deleted[f.ID] {
				survivors = append(survivors, f)
			}
		}
		scratch := NewPipeline(ParamsP3, BinPackerOptions{})
		if _, err := scratch.Apply(inserts(survivors...)...); err != nil {
			return false
		}
		return sameAggregates(inc, scratch)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// sameAggregates compares the member partitions and combined constraints
// of two pipelines, ignoring macro flex-offer IDs.
func sameAggregates(a, b *Pipeline) bool {
	sig := func(p *Pipeline) map[string]string {
		out := make(map[string]string)
		for _, ag := range p.Aggregates() {
			var key string
			for _, m := range ag.Members() {
				key += fmt_id(m.ID)
			}
			out[key] = aggSignature(ag)
		}
		return out
	}
	sa, sb := sig(a), sig(b)
	if len(sa) != len(sb) {
		return false
	}
	for k, v := range sa {
		if sb[k] != v {
			return false
		}
	}
	return true
}

func fmt_id(id flexoffer.ID) string {
	return string(rune(id)) + ","
}

func aggSignature(a *Aggregate) string {
	o := a.Offer
	sig := []byte{byte(o.EarliestStart), byte(o.LatestStart), byte(len(o.Profile))}
	for _, sl := range o.Profile {
		// Round, don't truncate: the delta paths may carry ~1-ulp float
		// drift relative to a from-scratch build, and truncation would
		// flip the digit on values that land just under a decimal.
		sig = append(sig, byte(int(math.Round(sl.EnergyMin*10))), byte(int(math.Round(sl.EnergyMax*10))))
	}
	return string(sig)
}

func TestMetrics(t *testing.T) {
	p := NewPipeline(ParamsP1, BinPackerOptions{})
	if _, err := p.Apply(inserts(
		offer(1, 100, 2, 4, 1, 2),
		offer(2, 100, 6, 4, 1, 2),
		offer(3, 200, 4, 4, 1, 2),
	)...); err != nil {
		t.Fatal(err)
	}
	m := p.CurrentMetrics()
	if m.FlexOffers != 3 {
		t.Errorf("FlexOffers = %d", m.FlexOffers)
	}
	if m.Aggregates != 2 {
		t.Errorf("Aggregates = %d", m.Aggregates)
	}
	if m.CompressionRatio != 1.5 {
		t.Errorf("CompressionRatio = %g", m.CompressionRatio)
	}
	// Offers 1 and 2 share a group (TF bucket 0: 2/8=0, 6/8=0): loss =
	// (2-2)+(6-2) = 4.
	if m.TotalTimeFlexLoss != 4 {
		t.Errorf("TotalTimeFlexLoss = %d", m.TotalTimeFlexLoss)
	}
}

func TestUpdateKindStrings(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Error("UpdateKind strings wrong")
	}
	if Created.String() != "created" || Changed.String() != "changed" || Deleted.String() != "deleted" {
		t.Error("ChangeKind strings wrong")
	}
	if UpdateKind(9).String() == "" || ChangeKind(9).String() == "" {
		t.Error("unknown kinds should still stringify")
	}
}

func TestSnapshotSurvivesPipelineMutation(t *testing.T) {
	p := NewPipeline(ParamsP0, BinPackerOptions{})
	f1 := offer(1, 100, 8, 2, 0, 2)
	f2 := offer(2, 100, 8, 2, 0, 2)
	if _, err := p.Apply(inserts(f1, f2)...); err != nil {
		t.Fatal(err)
	}
	live := p.Aggregates()[0]
	snap := live.Snapshot()

	// Mutate the live aggregate after the snapshot: a new member joins
	// and an old one leaves.
	if _, err := p.Apply(FlexOfferUpdate{Kind: Insert, Offer: offer(3, 100, 8, 2, 0, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(FlexOfferUpdate{Kind: Delete, Offer: f1}); err != nil {
		t.Fatal(err)
	}

	if snap.NumMembers() != 2 {
		t.Fatalf("snapshot members = %d, want the 2 at snapshot time", snap.NumMembers())
	}
	// Disaggregating the snapshot yields schedules for exactly the
	// snapshot-time members, all valid.
	sched := &flexoffer.Schedule{
		OfferID: snap.Offer.ID,
		Start:   snap.Offer.EarliestStart,
		Energy:  midEnergies(snap.Offer),
	}
	micro, err := snap.Disaggregate(sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(micro) != 2 {
		t.Fatalf("micro schedules = %d, want 2", len(micro))
	}
	for _, ms := range micro {
		if ms.OfferID != 1 && ms.OfferID != 2 {
			t.Errorf("unexpected member %d in snapshot disaggregation", ms.OfferID)
		}
	}
}

func midEnergies(f *flexoffer.FlexOffer) []float64 {
	out := make([]float64, f.NumSlices())
	for j, sl := range f.Profile {
		out[j] = (sl.EnergyMin + sl.EnergyMax) / 2
	}
	return out
}
