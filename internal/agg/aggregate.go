package agg

import (
	"fmt"
	"sort"

	"mirabel/internal/flexoffer"
)

// Aggregate is a macro flex-offer: the conservative combination of a set
// of member micro flex-offers. Offer carries the combined constraints in
// ordinary flex-offer form, so the scheduling component treats macro and
// micro flex-offers uniformly.
//
// Construction uses start-alignment: every member profile is placed at
// its own earliest start time relative to the aggregate's earliest start
// time, and the whole ensemble shifts together within the aggregate's
// time flexibility, which is the minimum member time flexibility. This is
// what makes disaggregation always succeed (the paper's disaggregation
// requirement): shifting the aggregate by s slots shifts member i to
// ES_i + s, and s ≤ TF_agg ≤ TF_i keeps every member inside its own
// flexibility interval.
type Aggregate struct {
	Offer   *flexoffer.FlexOffer
	members []*flexoffer.FlexOffer

	// TotalMin and TotalMax cache the profile's summed energy bounds.
	// They are refreshed by a full profile traversal on every
	// incremental add — deliberately so: this is the per-insert profile
	// traversal whose cost grows with the profile extent, the effect the
	// paper reports for threshold combinations that spread start times
	// (P2/P3 aggregation is slower "due to the need to traverse
	// flex-offer energy profiles with increased number of intervals
	// every time a new flex-offer has to be aggregated").
	TotalMin, TotalMax float64

	// Incrementally maintained energy-weighted activation cost inputs.
	costSum, energySum float64
}

// Members returns the member micro flex-offers in ID order.
func (a *Aggregate) Members() []*flexoffer.FlexOffer {
	out := make([]*flexoffer.FlexOffer, 0, len(a.members))
	for _, m := range a.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumMembers returns the member count.
func (a *Aggregate) NumMembers() int { return len(a.members) }

// TimeFlexibilityLoss returns the total time flexibility (slot·offers)
// lost by aggregating: Σ members (TF_member − TF_aggregate).
func (a *Aggregate) TimeFlexibilityLoss() flexoffer.Time {
	var loss flexoffer.Time
	tfa := a.Offer.TimeFlexibility()
	for _, m := range a.members {
		loss += m.TimeFlexibility() - tfa
	}
	return loss
}

// Snapshot returns an independent copy of the aggregate that stays
// valid — in particular for Disaggregate — while the live pipeline
// keeps mutating. The combined offer is deep-copied and the member
// list is fixed; the member flex-offers themselves are shared, which
// is safe because accepted offers are immutable.
func (a *Aggregate) Snapshot() *Aggregate {
	return &Aggregate{
		Offer:     a.Offer.Clone(),
		members:   append([]*flexoffer.FlexOffer(nil), a.members...),
		TotalMin:  a.TotalMin,
		TotalMax:  a.TotalMax,
		costSum:   a.costSum,
		energySum: a.energySum,
	}
}

// newAggregate starts an aggregate from its first member.
func newAggregate(id flexoffer.ID, first *flexoffer.FlexOffer) *Aggregate {
	a := &Aggregate{
		Offer: &flexoffer.FlexOffer{
			ID:            id,
			Prosumer:      "aggregate",
			EarliestStart: first.EarliestStart,
			LatestStart:   first.LatestStart,
			AssignBefore:  first.AssignBefore,
			Profile:       append([]flexoffer.Slice(nil), first.Profile...),
			CostPerKWh:    first.CostPerKWh,
		},
		members: []*flexoffer.FlexOffer{first},
	}
	e := absTotalMax(first)
	a.costSum = first.CostPerKWh * e
	a.energySum = e
	a.refreshTotals()
	return a
}

// buildAggregate constructs an aggregate from scratch for the given
// members ("aggregation from scratch is also supported").
func buildAggregate(id flexoffer.ID, members []*flexoffer.FlexOffer) *Aggregate {
	if len(members) == 0 {
		return nil
	}
	a := newAggregate(id, members[0])
	for _, m := range members[1:] {
		a.addProfileOnly(m)
	}
	a.members = members
	a.refreshCost()
	a.refreshTotals()
	return a
}

// add inserts a new member incrementally ("aggregated flex-offers can be
// incrementally updated to avoid a from-scratch re-computation").
func (a *Aggregate) add(m *flexoffer.FlexOffer) {
	a.members = append(a.members, m)
	a.addProfileOnly(m)
	e := absTotalMax(m)
	a.costSum += m.CostPerKWh * e
	a.energySum += e
	if a.energySum > 0 {
		a.Offer.CostPerKWh = a.costSum / a.energySum
	}
	a.refreshTotals()
}

// addProfileOnly merges m's constraints into the combined offer without
// refreshing the cached totals.
func (a *Aggregate) addProfileOnly(m *flexoffer.FlexOffer) {
	if m.EarliestStart < a.Offer.EarliestStart {
		// The profile grid starts earlier now: prepend zero slices and
		// move the latest start along so the time flexibility (min of
		// member flexibilities so far) is preserved.
		shift := int(a.Offer.EarliestStart - m.EarliestStart)
		grown := make([]flexoffer.Slice, shift+len(a.Offer.Profile))
		copy(grown[shift:], a.Offer.Profile)
		a.Offer.Profile = grown
		tfSoFar := a.Offer.TimeFlexibility()
		a.Offer.EarliestStart = m.EarliestStart
		a.Offer.LatestStart = m.EarliestStart + tfSoFar
	}
	end := int(m.EarliestStart-a.Offer.EarliestStart) + m.NumSlices()
	for len(a.Offer.Profile) < end {
		a.Offer.Profile = append(a.Offer.Profile, flexoffer.Slice{})
	}
	off := int(m.EarliestStart - a.Offer.EarliestStart)
	for j, sl := range m.Profile {
		a.Offer.Profile[off+j].EnergyMin += sl.EnergyMin
		a.Offer.Profile[off+j].EnergyMax += sl.EnergyMax
	}
	if ls := a.Offer.EarliestStart + m.TimeFlexibility(); ls < a.Offer.LatestStart {
		a.Offer.LatestStart = ls
	}
	if m.AssignBefore < a.Offer.AssignBefore {
		a.Offer.AssignBefore = m.AssignBefore
	}
}

// refreshTotals recomputes the cached energy bounds by traversing the
// whole combined profile.
func (a *Aggregate) refreshTotals() {
	var mn, mx float64
	for _, sl := range a.Offer.Profile {
		mn += sl.EnergyMin
		mx += sl.EnergyMax
	}
	a.TotalMin, a.TotalMax = mn, mx
}

// refreshCost recomputes the energy-weighted activation cost from the
// members.
func (a *Aggregate) refreshCost() {
	a.costSum, a.energySum = 0, 0
	for _, m := range a.members {
		e := absTotalMax(m)
		a.costSum += m.CostPerKWh * e
		a.energySum += e
	}
	if a.energySum > 0 {
		a.Offer.CostPerKWh = a.costSum / a.energySum
	}
}

func absTotalMax(m *flexoffer.FlexOffer) float64 {
	e := m.MaxTotalEnergy()
	if e < 0 {
		return -e
	}
	return e
}

// remove deletes a member and rebuilds the remaining aggregate. Returns
// false when the aggregate became empty.
func (a *Aggregate) remove(id flexoffer.ID) bool {
	for i, m := range a.members {
		if m.ID == id {
			a.members = append(a.members[:i], a.members[i+1:]...)
			break
		}
	}
	if len(a.members) == 0 {
		return false
	}
	*a = *buildAggregate(a.Offer.ID, a.members)
	return true
}

// Disaggregate converts a schedule of the aggregate into one valid
// schedule per member (the paper's disaggregation requirement). The
// member schedules sum exactly to the aggregate schedule, slot by slot.
func (a *Aggregate) Disaggregate(sched *flexoffer.Schedule) ([]*flexoffer.Schedule, error) {
	if err := a.Offer.ValidateSchedule(sched); err != nil {
		return nil, fmt.Errorf("agg: aggregate schedule invalid: %w", err)
	}
	shift := sched.Start - a.Offer.EarliestStart

	// Per aggregate slice, the fraction of the energy flexibility used:
	// fraction_j = (E_j − Min_j) / (Max_j − Min_j). Every member slice
	// under that aggregate slice is set to min + fraction·(max−min);
	// summing over members reproduces E_j exactly.
	fractions := make([]float64, len(a.Offer.Profile))
	for j, sl := range a.Offer.Profile {
		if flex := sl.EnergyMax - sl.EnergyMin; flex > 0 {
			fractions[j] = (sched.Energy[j] - sl.EnergyMin) / flex
			if fractions[j] < 0 {
				fractions[j] = 0
			}
			if fractions[j] > 1 {
				fractions[j] = 1
			}
		}
	}

	out := make([]*flexoffer.Schedule, 0, len(a.members))
	for _, m := range a.Members() {
		off := int(m.EarliestStart - a.Offer.EarliestStart)
		energy := make([]float64, m.NumSlices())
		for j, sl := range m.Profile {
			f := fractions[off+j]
			energy[j] = sl.EnergyMin + f*(sl.EnergyMax-sl.EnergyMin)
		}
		ms := &flexoffer.Schedule{OfferID: m.ID, Start: m.EarliestStart + shift, Energy: energy}
		if err := m.ValidateSchedule(ms); err != nil {
			// Cannot happen by construction; kept as an internal
			// consistency check.
			return nil, fmt.Errorf("agg: disaggregation produced invalid member schedule: %w", err)
		}
		out = append(out, ms)
	}
	return out, nil
}
