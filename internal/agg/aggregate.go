package agg

import (
	"fmt"
	"sort"

	"mirabel/internal/flexoffer"
)

// aggResyncEvery bounds float drift on the delta paths: after this many
// delta add/remove operations the next batch rebuilds the aggregate from
// scratch, re-summing profile, totals and cost (same trick as the
// scheduler's delta evaluator).
const aggResyncEvery = 4096

// Aggregate is a macro flex-offer: the conservative combination of a set
// of member micro flex-offers. Offer carries the combined constraints in
// ordinary flex-offer form, so the scheduling component treats macro and
// micro flex-offers uniformly.
//
// Construction uses start-alignment: every member profile is placed at
// its own earliest start time relative to the aggregate's earliest start
// time, and the whole ensemble shifts together within the aggregate's
// time flexibility, which is the minimum member time flexibility. This is
// what makes disaggregation always succeed (the paper's disaggregation
// requirement): shifting the aggregate by s slots shifts member i to
// ES_i + s, and s ≤ TF_agg ≤ TF_i keeps every member inside its own
// flexibility interval.
//
// The aggregate is maintained incrementally. Four combined attributes are
// extrema over the members — earliest start (min), time flexibility
// (min), assign-before (min) and profile grid end (max) — and per-extremum
// tie counters record how many members currently sit at each boundary.
// Removing a member that does not own any boundary (counter > 1, or the
// member is strictly inside) is a pure O(member profile) delta: subtract
// its profile contribution and cost terms and decrement matching
// counters. Only removals of boundary owners fall back to a single
// from-scratch rebuild for the whole batch.
type Aggregate struct {
	Offer   *flexoffer.FlexOffer
	members []*flexoffer.FlexOffer // kept sorted by member ID

	// TotalMin and TotalMax cache the profile's summed energy bounds,
	// maintained by deltas on add/remove.
	TotalMin, TotalMax float64

	// Version counts mutations of this aggregate. Every batch of member
	// changes bumps it exactly once, so an unchanged Version across
	// cycles means a cached Snapshot is still valid.
	Version uint64

	// Incrementally maintained energy-weighted activation cost inputs.
	costSum, energySum float64

	// Boundary tie counters: how many members sit at the current
	// min-EarliestStart, min-TimeFlexibility, min-AssignBefore and
	// max-profile-end. They make "does removing m force a rebuild?" an
	// O(1) test.
	nMinES, nMinTF, nMinAB, nMaxEnd int

	// deltaOps counts delta operations since the last from-scratch
	// build; at aggResyncEvery the next batch rebuilds to kill drift.
	deltaOps int
}

// Members returns the member micro flex-offers in ID order. The member
// list is kept ID-sorted at insert, so no per-call sort is needed.
func (a *Aggregate) Members() []*flexoffer.FlexOffer {
	return append([]*flexoffer.FlexOffer(nil), a.members...)
}

// NumMembers returns the member count.
func (a *Aggregate) NumMembers() int { return len(a.members) }

// TimeFlexibilityLoss returns the total time flexibility (slot·offers)
// lost by aggregating: Σ members (TF_member − TF_aggregate).
func (a *Aggregate) TimeFlexibilityLoss() flexoffer.Time {
	var loss flexoffer.Time
	tfa := a.Offer.TimeFlexibility()
	for _, m := range a.members {
		loss += m.TimeFlexibility() - tfa
	}
	return loss
}

// Snapshot returns an independent copy of the aggregate that stays
// valid — in particular for Disaggregate — while the live pipeline
// keeps mutating. The combined offer is deep-copied and the member
// list is fixed; the member flex-offers themselves are shared, which
// is safe because accepted offers are immutable. The copy carries the
// source Version, so callers can cache snapshots and reuse them while
// the live aggregate's Version is unchanged.
func (a *Aggregate) Snapshot() *Aggregate {
	return &Aggregate{
		Offer:     a.Offer.Clone(),
		members:   append([]*flexoffer.FlexOffer(nil), a.members...),
		TotalMin:  a.TotalMin,
		TotalMax:  a.TotalMax,
		Version:   a.Version,
		costSum:   a.costSum,
		energySum: a.energySum,
		nMinES:    a.nMinES,
		nMinTF:    a.nMinTF,
		nMinAB:    a.nMinAB,
		nMaxEnd:   a.nMaxEnd,
	}
}

// gridEnd returns the slot just past the combined profile: the maximum
// member EarliestStart + NumSlices.
func (a *Aggregate) gridEnd() flexoffer.Time {
	return a.Offer.EarliestStart + flexoffer.Time(len(a.Offer.Profile))
}

// newAggregate starts an aggregate from its first member.
func newAggregate(id flexoffer.ID, first *flexoffer.FlexOffer) *Aggregate {
	a := &Aggregate{
		Offer: &flexoffer.FlexOffer{
			ID:            id,
			Prosumer:      "aggregate",
			EarliestStart: first.EarliestStart,
			LatestStart:   first.LatestStart,
			AssignBefore:  first.AssignBefore,
			Profile:       append([]flexoffer.Slice(nil), first.Profile...),
			CostPerKWh:    first.CostPerKWh,
		},
		members: []*flexoffer.FlexOffer{first},
		Version: 1,
		nMinES:  1, nMinTF: 1, nMinAB: 1, nMaxEnd: 1,
	}
	e := absTotalMax(first)
	a.costSum = first.CostPerKWh * e
	a.energySum = e
	a.refreshTotals()
	return a
}

// buildAggregate constructs an aggregate from scratch for the given
// members ("aggregation from scratch is also supported"). The member
// slice is copied and ID-sorted; the caller's slice is not retained.
func buildAggregate(id flexoffer.ID, members []*flexoffer.FlexOffer) *Aggregate {
	if len(members) == 0 {
		return nil
	}
	sorted := append([]*flexoffer.FlexOffer(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	a := newAggregate(id, sorted[0])
	for _, m := range sorted[1:] {
		a.addProfileOnly(m)
	}
	a.members = sorted
	a.refreshCost()
	a.refreshTotals()
	a.recountBoundaries()
	return a
}

// memberIndex binary-searches the ID-sorted member list.
func (a *Aggregate) memberIndex(id flexoffer.ID) int {
	i := sort.Search(len(a.members), func(j int) bool { return a.members[j].ID >= id })
	if i < len(a.members) && a.members[i].ID == id {
		return i
	}
	return -1
}

// ownsBoundary reports whether removing m would move one of the combined
// extrema — the O(1) "must rebuild" test.
func (a *Aggregate) ownsBoundary(m *flexoffer.FlexOffer) bool {
	if a.nMinES <= 1 && m.EarliestStart == a.Offer.EarliestStart {
		return true
	}
	if a.nMinTF <= 1 && m.TimeFlexibility() == a.Offer.TimeFlexibility() {
		return true
	}
	if a.nMinAB <= 1 && m.AssignBefore == a.Offer.AssignBefore {
		return true
	}
	if a.nMaxEnd <= 1 && m.EarliestStart+flexoffer.Time(m.NumSlices()) == a.gridEnd() {
		return true
	}
	return false
}

// noteBoundaries updates the tie counters for a joining member. Must run
// BEFORE addProfileOnly mutates the combined offer, because it compares
// against the pre-merge extrema.
func (a *Aggregate) noteBoundaries(m *flexoffer.FlexOffer) {
	switch {
	case m.EarliestStart < a.Offer.EarliestStart:
		a.nMinES = 1
	case m.EarliestStart == a.Offer.EarliestStart:
		a.nMinES++
	}
	switch {
	case m.TimeFlexibility() < a.Offer.TimeFlexibility():
		a.nMinTF = 1
	case m.TimeFlexibility() == a.Offer.TimeFlexibility():
		a.nMinTF++
	}
	switch {
	case m.AssignBefore < a.Offer.AssignBefore:
		a.nMinAB = 1
	case m.AssignBefore == a.Offer.AssignBefore:
		a.nMinAB++
	}
	end := m.EarliestStart + flexoffer.Time(m.NumSlices())
	switch ge := a.gridEnd(); {
	case end > ge:
		a.nMaxEnd = 1
	case end == ge:
		a.nMaxEnd++
	}
}

// recountBoundaries rebuilds the tie counters from the member list.
func (a *Aggregate) recountBoundaries() {
	a.nMinES, a.nMinTF, a.nMinAB, a.nMaxEnd = 0, 0, 0, 0
	ge := a.gridEnd()
	tf := a.Offer.TimeFlexibility()
	for _, m := range a.members {
		if m.EarliestStart == a.Offer.EarliestStart {
			a.nMinES++
		}
		if m.TimeFlexibility() == tf {
			a.nMinTF++
		}
		if m.AssignBefore == a.Offer.AssignBefore {
			a.nMinAB++
		}
		if m.EarliestStart+flexoffer.Time(m.NumSlices()) == ge {
			a.nMaxEnd++
		}
	}
}

// add inserts a new member incrementally ("aggregated flex-offers can be
// incrementally updated to avoid a from-scratch re-computation"). Totals
// are delta-updated: the combined profile gains exactly m's slice
// contributions, so TotalMin/TotalMax grow by m's own sums.
func (a *Aggregate) add(m *flexoffer.FlexOffer) {
	a.noteBoundaries(m)
	i := sort.Search(len(a.members), func(j int) bool { return a.members[j].ID >= m.ID })
	a.members = append(a.members, nil)
	copy(a.members[i+1:], a.members[i:])
	a.members[i] = m
	a.addProfileOnly(m)
	for _, sl := range m.Profile {
		a.TotalMin += sl.EnergyMin
		a.TotalMax += sl.EnergyMax
	}
	e := absTotalMax(m)
	a.costSum += m.CostPerKWh * e
	a.energySum += e
	if a.energySum > 0 {
		a.Offer.CostPerKWh = a.costSum / a.energySum
	}
}

// addProfileOnly merges m's constraints into the combined offer without
// touching the cached totals or counters.
func (a *Aggregate) addProfileOnly(m *flexoffer.FlexOffer) {
	if m.EarliestStart < a.Offer.EarliestStart {
		// The profile grid starts earlier now: prepend zero slices and
		// move the latest start along so the time flexibility (min of
		// member flexibilities so far) is preserved.
		shift := int(a.Offer.EarliestStart - m.EarliestStart)
		grown := make([]flexoffer.Slice, shift+len(a.Offer.Profile))
		copy(grown[shift:], a.Offer.Profile)
		a.Offer.Profile = grown
		tfSoFar := a.Offer.TimeFlexibility()
		a.Offer.EarliestStart = m.EarliestStart
		a.Offer.LatestStart = m.EarliestStart + tfSoFar
	}
	end := int(m.EarliestStart-a.Offer.EarliestStart) + m.NumSlices()
	for len(a.Offer.Profile) < end {
		a.Offer.Profile = append(a.Offer.Profile, flexoffer.Slice{})
	}
	off := int(m.EarliestStart - a.Offer.EarliestStart)
	for j, sl := range m.Profile {
		a.Offer.Profile[off+j].EnergyMin += sl.EnergyMin
		a.Offer.Profile[off+j].EnergyMax += sl.EnergyMax
	}
	if ls := a.Offer.EarliestStart + m.TimeFlexibility(); ls < a.Offer.LatestStart {
		a.Offer.LatestStart = ls
	}
	if m.AssignBefore < a.Offer.AssignBefore {
		a.Offer.AssignBefore = m.AssignBefore
	}
}

// removeDeltaAt removes the member at index i as a pure delta: subtract
// its profile contribution, totals and cost terms, and decrement the
// counters it ties. Only valid when ownsBoundary(member) is false — the
// combined extrema stay where they are.
func (a *Aggregate) removeDeltaAt(i int) {
	m := a.members[i]
	if m.EarliestStart == a.Offer.EarliestStart {
		a.nMinES--
	}
	if m.TimeFlexibility() == a.Offer.TimeFlexibility() {
		a.nMinTF--
	}
	if m.AssignBefore == a.Offer.AssignBefore {
		a.nMinAB--
	}
	if m.EarliestStart+flexoffer.Time(m.NumSlices()) == a.gridEnd() {
		a.nMaxEnd--
	}
	off := int(m.EarliestStart - a.Offer.EarliestStart)
	for j, sl := range m.Profile {
		a.Offer.Profile[off+j].EnergyMin -= sl.EnergyMin
		a.Offer.Profile[off+j].EnergyMax -= sl.EnergyMax
		a.TotalMin -= sl.EnergyMin
		a.TotalMax -= sl.EnergyMax
	}
	e := absTotalMax(m)
	a.costSum -= m.CostPerKWh * e
	a.energySum -= e
	if a.energySum > 0 {
		a.Offer.CostPerKWh = a.costSum / a.energySum
	}
	a.members = append(a.members[:i], a.members[i+1:]...)
}

// rebuildWith replaces the aggregate contents with a from-scratch build
// over the given members, preserving identity (Offer.ID) and Version.
// Returns false when members is empty (the aggregate died).
func (a *Aggregate) rebuildWith(members []*flexoffer.FlexOffer) bool {
	if len(members) == 0 {
		a.members = a.members[:0]
		return false
	}
	nb := buildAggregate(a.Offer.ID, members)
	nb.Version = a.Version
	*a = *nb
	return true
}

// applyBatch applies one batch of member additions and removals as a
// single transaction: at worst one from-scratch rebuild for the whole
// batch (when a removed member owns a boundary or the drift budget is
// spent), pure deltas otherwise. The Version is bumped exactly once per
// mutating batch. Returns false when the aggregate has no members left.
func (a *Aggregate) applyBatch(added []*flexoffer.FlexOffer, removed []flexoffer.ID) bool {
	mutated := false
	for i, id := range removed {
		idx := a.memberIndex(id)
		if idx < 0 {
			continue // not a member: nothing to remove, no rebuild
		}
		if !mutated {
			mutated = true
			a.Version++
		}
		if a.deltaOps >= aggResyncEvery || a.ownsBoundary(a.members[idx]) {
			// One rebuild covers the rest of the batch: drop every
			// still-pending removal, merge the additions, build once.
			rest := make(map[flexoffer.ID]bool, len(removed)-i)
			for _, rid := range removed[i:] {
				rest[rid] = true
			}
			survivors := make([]*flexoffer.FlexOffer, 0, len(a.members)-1+len(added))
			for _, m := range a.members {
				if !rest[m.ID] {
					survivors = append(survivors, m)
				}
			}
			survivors = append(survivors, added...)
			return a.rebuildWith(survivors)
		}
		a.removeDeltaAt(idx)
		a.deltaOps++
	}
	if len(added) > 0 && !mutated {
		a.Version++
	}
	if len(a.members) == 0 {
		// Emptied (can only happen defensively — the last member always
		// owns every boundary) and possibly refilled within the batch.
		return a.rebuildWith(append([]*flexoffer.FlexOffer(nil), added...))
	}
	for _, m := range added {
		a.add(m)
		a.deltaOps++
	}
	return true
}

// refreshTotals recomputes the cached energy bounds by traversing the
// whole combined profile.
func (a *Aggregate) refreshTotals() {
	var mn, mx float64
	for _, sl := range a.Offer.Profile {
		mn += sl.EnergyMin
		mx += sl.EnergyMax
	}
	a.TotalMin, a.TotalMax = mn, mx
}

// refreshCost recomputes the energy-weighted activation cost from the
// members.
func (a *Aggregate) refreshCost() {
	a.costSum, a.energySum = 0, 0
	for _, m := range a.members {
		e := absTotalMax(m)
		a.costSum += m.CostPerKWh * e
		a.energySum += e
	}
	if a.energySum > 0 {
		a.Offer.CostPerKWh = a.costSum / a.energySum
	}
}

func absTotalMax(m *flexoffer.FlexOffer) float64 {
	e := m.MaxTotalEnergy()
	if e < 0 {
		return -e
	}
	return e
}

// remove deletes a single member. Unknown ids return immediately without
// touching the aggregate. Returns false when the aggregate became empty.
func (a *Aggregate) remove(id flexoffer.ID) bool {
	if a.memberIndex(id) < 0 {
		return true
	}
	return a.applyBatch(nil, []flexoffer.ID{id})
}

// Disaggregate converts a schedule of the aggregate into one valid
// schedule per member (the paper's disaggregation requirement). The
// member schedules sum exactly to the aggregate schedule, slot by slot.
func (a *Aggregate) Disaggregate(sched *flexoffer.Schedule) ([]*flexoffer.Schedule, error) {
	if err := a.Offer.ValidateSchedule(sched); err != nil {
		return nil, fmt.Errorf("agg: aggregate schedule invalid: %w", err)
	}
	shift := sched.Start - a.Offer.EarliestStart

	// Per aggregate slice, the fraction of the energy flexibility used:
	// fraction_j = (E_j − Min_j) / (Max_j − Min_j). Every member slice
	// under that aggregate slice is set to min + fraction·(max−min);
	// summing over members reproduces E_j exactly.
	fractions := make([]float64, len(a.Offer.Profile))
	for j, sl := range a.Offer.Profile {
		if flex := sl.EnergyMax - sl.EnergyMin; flex > 0 {
			fractions[j] = (sched.Energy[j] - sl.EnergyMin) / flex
			if fractions[j] < 0 {
				fractions[j] = 0
			}
			if fractions[j] > 1 {
				fractions[j] = 1
			}
		}
	}

	out := make([]*flexoffer.Schedule, 0, len(a.members))
	for _, m := range a.members {
		off := int(m.EarliestStart - a.Offer.EarliestStart)
		energy := make([]float64, m.NumSlices())
		for j, sl := range m.Profile {
			f := fractions[off+j]
			energy[j] = sl.EnergyMin + f*(sl.EnergyMax-sl.EnergyMin)
		}
		ms := &flexoffer.Schedule{OfferID: m.ID, Start: m.EarliestStart + shift, Energy: energy}
		if err := m.ValidateSchedule(ms); err != nil {
			// Cannot happen by construction; kept as an internal
			// consistency check.
			return nil, fmt.Errorf("agg: disaggregation produced invalid member schedule: %w", err)
		}
		out = append(out, ms)
	}
	return out, nil
}
