package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mirabel/internal/flexoffer"
)

func TestGroupByValidation(t *testing.T) {
	if _, err := GroupBy(nil, nil); err == nil {
		t.Error("no criteria accepted")
	}
	if _, err := GroupBy(nil, []Criterion{{Name: "x"}}); err == nil {
		t.Error("criterion without extractor accepted")
	}
	if _, err := GroupBy(nil, []Criterion{ByPrice(-1)}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestGroupByExactEquality(t *testing.T) {
	offers := []*flexoffer.FlexOffer{
		offer(1, 100, 8, 4, 1, 2),
		offer(2, 100, 8, 4, 1, 2),
		offer(3, 200, 8, 4, 1, 2),
	}
	groups, err := GroupBy(offers, []Criterion{ByEarliestStart(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
}

func TestGroupByToleranceWindow(t *testing.T) {
	// Values 0, 3, 6, 9 with tolerance 5: sweep gives {0,3}, {6,9} —
	// every within-group spread ≤ 5.
	var offers []*flexoffer.FlexOffer
	for i, es := range []flexoffer.Time{0, 3, 6, 9} {
		offers = append(offers, offer(flexoffer.ID(i+1), es, 4, 2, 0, 1))
	}
	groups, err := GroupBy(offers, []Criterion{ByEarliestStart(5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for _, g := range groups {
		var lo, hi flexoffer.Time = 1 << 30, -1
		for _, f := range g {
			if f.EarliestStart < lo {
				lo = f.EarliestStart
			}
			if f.EarliestStart > hi {
				hi = f.EarliestStart
			}
		}
		if hi-lo > 5 {
			t.Errorf("group spread %d exceeds tolerance", hi-lo)
		}
	}
}

func TestGroupByMultipleCriteriaIncludingPrice(t *testing.T) {
	// Price is one of the paper's "additional flexibility types".
	a := offer(1, 100, 8, 4, 1, 2)
	a.CostPerKWh = 0.01
	b := offer(2, 100, 8, 4, 1, 2)
	b.CostPerKWh = 0.011
	c := offer(3, 100, 8, 4, 1, 2)
	c.CostPerKWh = 0.05 // far off in price
	groups, err := GroupBy([]*flexoffer.FlexOffer{a, b, c}, []Criterion{
		ByEarliestStart(0),
		ByPrice(0.005),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (price split)", len(groups))
	}
}

func TestGroupByDurationAndPeakPower(t *testing.T) {
	short := offer(1, 100, 8, 2, 0, 1)
	long := offer(2, 100, 8, 9, 0, 1)
	strong := offer(3, 100, 8, 2, 0, 10)
	groups, err := GroupBy([]*flexoffer.FlexOffer{short, long, strong}, []Criterion{
		ByDuration(1),
		ByPeakPower(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
}

func TestAggregateGroupsProducesValidAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	offers := randomOffers(rng, 50)
	groups, err := GroupBy(offers, []Criterion{
		ByEarliestStart(8),
		ByTimeFlexibility(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	aggs := AggregateGroups(groups, 1000)
	total := 0
	for _, a := range aggs {
		total += a.NumMembers()
		if err := a.Offer.Validate(); err != nil {
			t.Fatalf("invalid aggregate: %v", err)
		}
	}
	if total != len(offers) {
		t.Errorf("aggregated %d of %d offers", total, len(offers))
	}
}

// Property: GroupBy is a partition (every offer in exactly one group) and
// every criterion's within-group spread respects its tolerance.
func TestPropertyGroupByPartitionAndTolerance(t *testing.T) {
	criteria := []Criterion{
		ByEarliestStart(6),
		ByTimeFlexibility(4),
		ByEnergyFlexibility(3),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		offers := randomOffers(rng, 40)
		groups, err := GroupBy(offers, criteria)
		if err != nil {
			return false
		}
		seen := map[flexoffer.ID]int{}
		for _, g := range groups {
			for _, off := range g {
				seen[off.ID]++
			}
			for _, c := range criteria {
				lo, hi := 1e308, -1e308
				for _, off := range g {
					v := c.Extract(off)
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				if hi-lo > c.Tolerance+1e-9 {
					return false
				}
			}
		}
		if len(seen) != len(offers) {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the disaggregation requirement holds for operator-built
// aggregates too.
func TestPropertyOperatorAggregatesDisaggregate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		offers := randomOffers(rng, 30)
		groups, err := GroupBy(offers, []Criterion{ByEarliestStart(8), ByTimeFlexibility(8)})
		if err != nil {
			return false
		}
		for _, a := range AggregateGroups(groups, 1) {
			tf := int(a.Offer.TimeFlexibility())
			start := a.Offer.EarliestStart + flexoffer.Time(rng.Intn(tf+1))
			energy := make([]float64, a.Offer.NumSlices())
			for j, sl := range a.Offer.Profile {
				energy[j] = sl.EnergyMin + rng.Float64()*(sl.EnergyMax-sl.EnergyMin)
			}
			if _, err := a.Disaggregate(&flexoffer.Schedule{OfferID: a.Offer.ID, Start: start, Energy: energy}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
