package ingest

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"mirabel/internal/store"
)

// TestOnMeasurementsHookSeesLiveBatches: the hook fires for every
// measurement flowing through the consumer apply path, including
// coalesced batches.
func TestOnMeasurementsHookSeesLiveBatches(t *testing.T) {
	s := testStore(t)
	var seen atomic.Int64
	q, err := Open(Config{
		Store: s, Queue: 32, Policy: PolicyBlock, Consumers: 2, MaxBatch: 16,
		OnMeasurements: func(ms []store.Measurement) { seen.Add(int64(len(ms))) },
	})
	if err != nil {
		t.Fatalf("open queue: %v", err)
	}
	ctx := context.Background()
	const n = 40
	for i := 0; i < n; i++ {
		if err := q.SubmitMeasurements(ctx, []store.Measurement{meas("p1", int64(i), 1)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := seen.Load(); got != n {
		t.Fatalf("hook saw %d measurements, want %d", got, n)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestOnMeasurementsHookSeesDeferredRefill: measurements parked on disk
// by PolicyDefer reach the hook when the refill feeds them back through
// the apply path.
func TestOnMeasurementsHookSeesDeferredRefill(t *testing.T) {
	s := testStore(t)
	path := filepath.Join(t.TempDir(), "ingest.log")
	var seen atomic.Int64
	q := newIdleQueue(t, Config{
		Store: s, Path: path, Queue: 1, Policy: PolicyDefer, MaxBatch: 8, Consumers: 1,
		OnMeasurements: func(ms []store.Measurement) { seen.Add(int64(len(ms))) },
	})
	ctx := context.Background()
	const n = 6
	for i := 0; i < n; i++ {
		// Queue holds 1, no consumers yet: the rest defers to disk.
		if err := q.SubmitMeasurements(ctx, []store.Measurement{meas("p1", int64(i), 1)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if q.deferred.Load() == 0 {
		t.Fatal("nothing deferred: the refill path is not exercised")
	}
	startConsumers(q, 1)
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := seen.Load(); got != n {
		t.Fatalf("hook saw %d measurements, want %d (live + refilled)", got, n)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestOnMeasurementsHookSeesRecoveryReplay: after a crash, journal
// recovery replays acked measurements through the same hook — so a
// forecast registry rebuilt at restart observes them.
func TestOnMeasurementsHookSeesRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.log")
	s1 := testStore(t)
	q1, err := Open(Config{Store: s1, Path: path, Sync: store.SyncAlways, Queue: 64, Policy: PolicyBlock, Consumers: 1})
	if err != nil {
		t.Fatalf("open q1: %v", err)
	}
	ctx := context.Background()
	const n = 12
	for i := 0; i < n; i++ {
		if err := q1.SubmitMeasurements(ctx, []store.Measurement{meas("p1", int64(i), 1)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	q1.Kill() // crash: no drain, no compaction

	var seen atomic.Int64
	s2 := testStore(t)
	q2, err := Open(Config{
		Store: s2, Path: path, Sync: store.SyncAlways, Queue: 64, Policy: PolicyBlock, Consumers: 1,
		OnMeasurements: func(ms []store.Measurement) { seen.Add(int64(len(ms))) },
	})
	if err != nil {
		t.Fatalf("reopen queue: %v", err)
	}
	if err := q2.Drain(ctx); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	if got := seen.Load(); got != n {
		t.Fatalf("hook saw %d measurements after recovery, want %d", got, n)
	}
	if err := q2.Close(); err != nil {
		t.Fatalf("close q2: %v", err)
	}
}
