package ingest

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mirabel/internal/store"
)

// Stats is a point-in-time snapshot of the queue's behaviour: how deep
// the backlog runs, how fast acks come back, and how well consumers
// coalesce.
type Stats struct {
	Enqueued  uint64 // events acked (journaled or staged)
	Consumed  uint64 // events applied to the store
	Shed      uint64 // submissions rejected with ErrOverloaded
	Deferred  uint64 // events parked on disk by PolicyDefer
	Recovered uint64 // events replayed from the journal at Open

	Depth       int // events staged in memory right now
	DiskBacklog int // deferred events awaiting refill right now

	AckP50, AckP95, AckP99 time.Duration // producer ack latency

	Batches      uint64  // coalesced store applies
	MeanBatch    float64 // events per apply
	MaxBatchSeen int

	ApplyErrors uint64

	Compactions    uint64 // sealed journal segments retired mid-run
	CompactedBytes uint64 // journal bytes reclaimed by those compactions

	Journal store.LogStats // group-commit counters of the journal
}

// ackWindow bounds the latency reservoir; recent acks dominate.
const ackWindow = 4096

// statsCollector accumulates queue counters with atomic hot paths and a
// small mutex-guarded latency ring.
type statsCollector struct {
	enqueued      atomic.Uint64
	consumed      atomic.Uint64
	shed          atomic.Uint64
	deferredTotal atomic.Uint64
	recovered     atomic.Uint64
	batches       atomic.Uint64
	batchEvents   atomic.Uint64
	maxBatch      atomic.Int64
	applyErrs     atomic.Uint64
	compactions   atomic.Uint64
	compactedByte atomic.Uint64

	mu       sync.Mutex
	ring     [ackWindow]time.Duration
	ringNext int
	ringLen  int
	firstErr error
}

func (c *statsCollector) observeAck(d time.Duration) {
	c.mu.Lock()
	c.ring[c.ringNext] = d
	c.ringNext = (c.ringNext + 1) % ackWindow
	if c.ringLen < ackWindow {
		c.ringLen++
	}
	c.mu.Unlock()
}

func (c *statsCollector) observeBatch(n int) {
	c.consumed.Add(uint64(n))
	c.batches.Add(1)
	c.batchEvents.Add(uint64(n))
	for {
		cur := c.maxBatch.Load()
		if int64(n) <= cur || c.maxBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

func (c *statsCollector) noteApplyErr(err error) {
	c.applyErrs.Add(1)
	c.mu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.mu.Unlock()
}

func (c *statsCollector) firstApplyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstErr
}

func (c *statsCollector) snapshot() Stats {
	s := Stats{
		Enqueued:     c.enqueued.Load(),
		Consumed:     c.consumed.Load(),
		Shed:         c.shed.Load(),
		Deferred:     c.deferredTotal.Load(),
		Recovered:    c.recovered.Load(),
		Batches:      c.batches.Load(),
		MaxBatchSeen: int(c.maxBatch.Load()),
		ApplyErrors:  c.applyErrs.Load(),

		Compactions:    c.compactions.Load(),
		CompactedBytes: c.compactedByte.Load(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(c.batchEvents.Load()) / float64(s.Batches)
	}
	c.mu.Lock()
	lat := make([]time.Duration, c.ringLen)
	copy(lat, c.ring[:c.ringLen])
	c.mu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.AckP50 = lat[len(lat)*50/100]
		s.AckP95 = lat[len(lat)*95/100]
		s.AckP99 = lat[len(lat)*99/100]
	}
	return s
}
