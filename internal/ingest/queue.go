package ingest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mirabel/internal/store"
)

// Journal event kinds.
const (
	kindOffer = "offer"
	kindMeas  = "meas"
)

// A journal line frames one logged ingest event — a flex-offer upsert
// or a measurement batch — as
//
//	kind|d|crc32hex|payload\n
//
// with the payload's JSON kept verbatim: the ack path is the producer's
// latency, so the frame is built by hand instead of wrapping the
// payload in a second json.Marshal. The d flag marks events parked on
// disk by PolicyDefer — the refill reader re-admits them even when they
// sit past the recovery horizon. The CRC covers kind|d|payload so
// recovery rejects corrupt lines.
func checksum(kind string, deferred bool, data []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(kind))
	if deferred {
		h.Write([]byte{'|', '1', '|'})
	} else {
		h.Write([]byte{'|', '0', '|'})
	}
	h.Write(data)
	return h.Sum32()
}

// event is one queued unit of intake work. Exactly one of offer/meas is
// set. out, when non-nil, is the submission epoch's outstanding counter
// — the compactor waits for a sealed epoch to drain to zero before
// deleting the journal segment its events were acked into.
type event struct {
	offer *store.OfferRecord
	meas  []store.Measurement
	out   *atomic.Int64
}

// marshalEvent pre-serializes the event payload so encoding errors
// surface to the producer before the event is staged anywhere.
func marshalEvent(ev event) (kind string, data json.RawMessage, err error) {
	if ev.offer != nil {
		data, err = json.Marshal(ev.offer)
		return kindOffer, data, err
	}
	data, err = json.Marshal(ev.meas)
	return kindMeas, data, err
}

// encodeLine frames a journal line from a pre-marshaled payload. JSON
// never emits a raw newline, so the payload cannot break line framing.
func encodeLine(kind string, deferred bool, data json.RawMessage) ([]byte, error) {
	flag := byte('0')
	if deferred {
		flag = '1'
	}
	line := make([]byte, 0, len(kind)+len(data)+13)
	line = append(line, kind...)
	line = append(line, '|', flag, '|')
	line = strconv.AppendUint(line, uint64(checksum(kind, deferred, data)), 16)
	line = append(line, '|')
	line = append(line, data...)
	return append(line, '\n'), nil
}

// decodeLine parses and verifies one journal line. ok is false for
// corrupt lines (skipped and counted, never fatal).
func decodeLine(line []byte) (ev event, deferred bool, ok bool) {
	line = bytes.TrimSuffix(line, []byte{'\n'})
	k := bytes.IndexByte(line, '|')
	if k < 0 || len(line) < k+4 || line[k+2] != '|' {
		return event{}, false, false
	}
	kind := string(line[:k])
	deferred = line[k+1] == '1'
	rest := line[k+3:]
	c := bytes.IndexByte(rest, '|')
	if c < 0 {
		return event{}, false, false
	}
	crc, err := strconv.ParseUint(string(rest[:c]), 16, 32)
	if err != nil {
		return event{}, false, false
	}
	data := rest[c+1:]
	if checksum(kind, deferred, data) != uint32(crc) {
		return event{}, false, false
	}
	switch kind {
	case kindOffer:
		var r store.OfferRecord
		if err := json.Unmarshal(data, &r); err != nil || r.Offer == nil {
			return event{}, false, false
		}
		return event{offer: &r}, deferred, true
	case kindMeas:
		var ms []store.Measurement
		if err := json.Unmarshal(data, &ms); err != nil {
			return event{}, false, false
		}
		return event{meas: ms}, deferred, true
	default:
		return event{}, false, false
	}
}

// Queue is the durable async intake path. See the package comment for
// the full contract. All methods are safe for concurrent use.
type Queue struct {
	cfg Config
	log *store.GroupLog // nil for a volatile queue

	// gate serializes submissions against Drain/Close: producers hold
	// the read side for a whole submit, the drain barrier takes the
	// write side so it observes a quiescent producer set.
	gate sync.RWMutex

	ch   chan event
	stop chan struct{} // closed to retire consumers
	done sync.WaitGroup

	// pending counts events staged in memory (queued + being applied);
	// deferred counts events parked in the journal awaiting refill.
	// Drain waits for both to hit zero while holding the gate.
	pending  atomic.Int64
	deferred atomic.Int64

	// horizon guards the refill reader's view of the journal: offsets
	// below recoveredEnd predate this Queue and are re-applied
	// wholesale; past it only Deferred-flagged lines are admitted.
	// readOff is the next unread byte. Offsets are logical positions in
	// the concatenation <Path>.old ++ <Path>: oldSize is the sealed
	// segment's length (0 when none), so physical positions in the live
	// journal are offset by it.
	horizon      sync.Mutex
	readOff      int64
	recoveredEnd int64
	oldSize      int64

	// epoch is the outstanding counter stamped onto submissions
	// (written under gate.Lock at rotation, read under gate.RLock);
	// prev, touched only by the compactor goroutine, is the sealed
	// epoch still draining.
	epoch *atomic.Int64
	prev  *atomic.Int64

	refillKick chan struct{} // cap 1: "the journal may hold refill work"

	closed  atomic.Bool
	stopped atomic.Bool // consumers have fully exited (Close/Kill done)

	stats statsCollector
}

// Open builds the queue, recovers any un-consumed journaled events, and
// starts the consumer goroutines.
func Open(cfg Config) (*Queue, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("ingest: Config.Store is required")
	}
	if cfg.Policy == PolicyDefer && cfg.Path == "" {
		return nil, fmt.Errorf("ingest: PolicyDefer needs a journal (Config.Path)")
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 4096
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 2
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	q := &Queue{
		cfg:        cfg,
		ch:         make(chan event, cfg.Queue),
		stop:       make(chan struct{}),
		refillKick: make(chan struct{}, 1),
		epoch:      new(atomic.Int64),
	}
	if cfg.Path != "" {
		// Survey the existing journal — a sealed compaction segment
		// first, if a crash left one behind, then the live file — count
		// recoverable events, and find each intact prefix so a torn
		// tail never hides appends.
		recovered := 0
		count := func(line []byte) error {
			if _, _, ok := decodeLine(line); ok {
				recovered++
			}
			return nil
		}
		oldIntact, err := store.ReplayLines(oldJournalPath(cfg.Path), count)
		if err != nil {
			return nil, err
		}
		if err := truncateTorn(oldJournalPath(cfg.Path), oldIntact); err != nil {
			return nil, err
		}
		if oldIntact == 0 {
			_ = os.Remove(oldJournalPath(cfg.Path)) // empty or absent
		}
		intact, err := store.ReplayLines(cfg.Path, count)
		if err != nil {
			return nil, err
		}
		if err := truncateTorn(cfg.Path, intact); err != nil {
			return nil, err
		}
		log, err := store.OpenGroupLog(cfg.Path, cfg.Sync, cfg.SyncInterval)
		if err != nil {
			return nil, err
		}
		q.log = log
		q.oldSize = oldIntact
		q.recoveredEnd = oldIntact + intact
		if recovered > 0 {
			q.deferred.Store(int64(recovered))
			q.stats.recovered.Store(uint64(recovered))
			q.kick()
		}
	}
	q.done.Add(cfg.Consumers)
	for i := 0; i < cfg.Consumers; i++ {
		go q.consume()
	}
	if q.log != nil && (cfg.CompactBytes > 0 || q.oldSize > 0) {
		q.done.Add(1)
		go q.compactLoop()
	}
	return q, nil
}

// oldJournalPath is where a rotation seals the journal's prior contents.
func oldJournalPath(path string) string { return path + ".old" }

// truncateTorn cuts a journal file back to its intact prefix.
func truncateTorn(path string, intact int64) error {
	if fi, err := os.Stat(path); err == nil && fi.Size() > intact {
		if terr := os.Truncate(path, intact); terr != nil {
			return fmt.Errorf("ingest: truncate torn journal tail: %w", terr)
		}
	}
	return nil
}

// SubmitOffer queues a flex-offer upsert. The returned nil is the
// durability ack (journal committed per the fsync policy); under
// PolicyShed a full queue yields ErrOverloaded.
func (q *Queue) SubmitOffer(ctx context.Context, rec store.OfferRecord) error {
	if rec.Offer == nil {
		return fmt.Errorf("ingest: offer record without offer")
	}
	return q.submit(ctx, event{offer: &rec})
}

// SubmitMeasurements queues a measurement batch.
func (q *Queue) SubmitMeasurements(ctx context.Context, ms []store.Measurement) error {
	if len(ms) == 0 {
		return nil
	}
	return q.submit(ctx, event{meas: ms})
}

func (q *Queue) submit(ctx context.Context, ev event) error {
	if q.closed.Load() {
		return ErrClosed
	}
	kind, data, err := marshalEvent(ev)
	if err != nil {
		return fmt.Errorf("ingest: marshal event: %w", err)
	}
	start := time.Now()
	q.gate.RLock()
	defer q.gate.RUnlock()
	if q.closed.Load() {
		return ErrClosed
	}

	// Stamp the submission epoch before staging so the consumer can
	// retire the event against the right generation (gate.RLock makes
	// the read race-free against rotation's swap).
	ev.out = q.epoch
	ev.out.Add(1)

	deferred := false
	switch q.cfg.Policy {
	case PolicyBlock:
		q.pending.Add(1)
		select {
		case q.ch <- ev:
		case <-ctx.Done():
			q.pending.Add(-1)
			ev.out.Add(-1)
			return ctx.Err()
		case <-q.stop:
			q.pending.Add(-1)
			ev.out.Add(-1)
			return ErrClosed
		}
	case PolicyShed:
		q.pending.Add(1)
		select {
		case q.ch <- ev:
		default:
			q.pending.Add(-1)
			ev.out.Add(-1)
			q.stats.shed.Add(1)
			return ErrOverloaded
		}
	case PolicyDefer:
		q.pending.Add(1)
		select {
		case q.ch <- ev:
		default:
			q.pending.Add(-1)
			ev.out.Add(-1) // disk-parked: tracked by deferred instead
			deferred = true
		}
	default:
		ev.out.Add(-1)
		return fmt.Errorf("ingest: unknown policy %v", q.cfg.Policy)
	}

	if q.log != nil {
		line, err := encodeLine(kind, deferred, data)
		if err == nil {
			if deferred {
				// Count before the append lands: a concurrent refill
				// must never apply a journal line that is not yet
				// reflected in the backlog counter, or the counter
				// would stick above zero and Drain would never finish.
				q.deferred.Add(1)
			}
			err = q.log.Append([][]byte{line})
		}
		if err != nil {
			// A non-deferred event is already staged and will still be
			// applied from memory; the ack fails because durability
			// can't be promised.
			if deferred {
				q.deferred.Add(-1)
				return fmt.Errorf("ingest: defer to journal: %w", err)
			}
			return fmt.Errorf("ingest: journal event: %w", err)
		}
	}
	if deferred {
		q.stats.deferredTotal.Add(1)
		q.kick()
	}
	q.stats.enqueued.Add(1)
	q.stats.observeAck(time.Since(start))
	return nil
}

// kick nudges a consumer toward the journal refill path. The channel
// holds one token; a pending token already promises a future scan.
func (q *Queue) kick() {
	select {
	case q.refillKick <- struct{}{}:
	default:
	}
}

// consume is one drain goroutine: pull an event, greedily coalesce
// whatever else is queued (up to MaxBatch), apply as one store round.
func (q *Queue) consume() {
	defer q.done.Done()
	for {
		select {
		case <-q.stop:
			return
		case ev := <-q.ch:
			batch := q.coalesce(ev)
			q.applyEvents(batch)
			for _, b := range batch {
				if b.out != nil {
					b.out.Add(-1)
				}
			}
			q.pending.Add(-int64(len(batch)))
		case <-q.refillKick:
			q.refill()
		}
	}
}

func (q *Queue) coalesce(first event) []event {
	batch := make([]event, 1, 16)
	batch[0] = first
	for len(batch) < q.cfg.MaxBatch {
		select {
		case ev := <-q.ch:
			batch = append(batch, ev)
		default:
			return batch
		}
	}
	return batch
}

// applyEvents drains one coalesced batch into the store. Measurements
// and brand-new offers go through one ApplyBatch (one WAL group);
// already-present offers go through UpdateOffers with a guard that
// never downgrades a record that progressed to scheduled/executed —
// that keeps journal replay idempotent.
func (q *Queue) applyEvents(events []event) {
	b := store.NewBatch()
	var updates []store.OfferUpdate
	for _, ev := range events {
		switch {
		case ev.meas != nil:
			for _, m := range ev.meas {
				b.PutMeasurement(m)
			}
		case ev.offer != nil:
			rec := *ev.offer
			if _, ok := q.cfg.Store.GetOffer(rec.Offer.ID); ok {
				updates = append(updates, store.OfferUpdate{
					ID: rec.Offer.ID,
					Mutate: func(r *store.OfferRecord) {
						if r.State == store.OfferScheduled || r.State == store.OfferExecuted {
							return // never roll back a progressed offer
						}
						*r = rec
					},
				})
			} else {
				b.PutOffer(rec)
			}
		}
	}
	if b.Len() > 0 {
		if err := q.cfg.Store.ApplyBatch(b); err != nil {
			q.stats.noteApplyErr(err)
		}
	}
	if q.cfg.OnMeasurements != nil {
		for _, ev := range events {
			if len(ev.meas) > 0 {
				q.cfg.OnMeasurements(ev.meas)
			}
		}
	}
	if len(updates) > 0 {
		results, err := q.cfg.Store.UpdateOffers(updates)
		if err != nil {
			q.stats.noteApplyErr(err)
		}
		for i, res := range results {
			// The existence probe raced a concurrent delete/compaction:
			// fall back to a plain upsert.
			if errors.Is(res.Err, store.ErrUnknownOffer) {
				var rec store.OfferRecord
				u := updates[i]
				u.Mutate(&rec)
				if rec.Offer != nil {
					if perr := q.cfg.Store.PutOffer(rec); perr != nil {
						q.stats.noteApplyErr(perr)
					}
				}
			} else if res.Err != nil {
				q.stats.noteApplyErr(res.Err)
			}
		}
	}
	q.stats.observeBatch(len(events))
}

// refill is the single-flight disk lane: it re-reads the journal and
// applies every recovered-region or Deferred-flagged event until the
// disk backlog is empty. horizon makes it single-flight — a second
// consumer kicked concurrently just finds nothing left to read.
func (q *Queue) refill() {
	q.horizon.Lock()
	defer q.horizon.Unlock()
	for q.deferred.Load() > 0 {
		events, err := q.readDiskBacklog()
		if err != nil {
			q.stats.noteApplyErr(err)
			return
		}
		if len(events) == 0 {
			return
		}
		q.applyEvents(events)
		q.deferred.Add(-int64(len(events)))
	}
}

// readDiskBacklog scans forward from readOff and collects up to
// MaxBatch applicable events. Caller holds horizon. Logical offsets run
// across the sealed segment (immutable, read to EOF) and then the live
// journal; a partial last line in the live file (a group flush racing
// this read) is left for the next pass.
func (q *Queue) readDiskBacklog() ([]event, error) {
	if q.readOff < q.oldSize {
		events, err := q.scanSegment(oldJournalPath(q.cfg.Path), 0)
		if err != nil || len(events) > 0 {
			return events, err
		}
		// Sealed segment exhausted without an admissible event: fall
		// through to the live journal.
	}
	return q.scanSegment(q.cfg.Path, q.oldSize)
}

// scanSegment reads one journal file whose first byte sits at logical
// offset base, advancing q.readOff past every complete line consumed.
func (q *Queue) scanSegment(path string, base int64) ([]event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: open journal for refill: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(q.readOff-base, io.SeekStart); err != nil {
		return nil, fmt.Errorf("ingest: seek journal: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var events []event
	for len(events) < q.cfg.MaxBatch {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, fmt.Errorf("ingest: scan journal: %w", err)
		}
		lineStart := q.readOff
		q.readOff += int64(len(line))
		ev, deferred, ok := decodeLine(line)
		if !ok {
			q.stats.noteApplyErr(fmt.Errorf("ingest: corrupt journal line at %d", lineStart))
			continue
		}
		if lineStart < q.recoveredEnd || deferred {
			events = append(events, ev)
		}
	}
	return events, nil
}

// compactLoop bounds the journal between drains without stalling
// producers: rotation pauses submissions only for a rename, and the
// sealed segment is retired in the background once everything in it is
// durably applied.
func (q *Queue) compactLoop() {
	defer q.done.Done()
	interval := q.cfg.CompactInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-q.stop:
			return
		case <-tick.C:
			q.compactOnce()
		}
	}
}

func (q *Queue) compactOnce() {
	q.horizon.Lock()
	sealed := q.oldSize
	q.horizon.Unlock()
	if sealed > 0 {
		q.retireSealed()
		return
	}
	if q.cfg.CompactBytes <= 0 {
		return
	}
	if size, err := q.log.Size(); err != nil || size < q.cfg.CompactBytes {
		return
	}

	// Seal the journal. The exclusive gate pauses producers for just
	// the flush+rename; holding horizon too keeps the refill reader's
	// offsets coherent with the file swap (logical positions are
	// unchanged: the old bytes keep their offsets, new appends land
	// after them).
	q.gate.Lock()
	defer q.gate.Unlock()
	if q.closed.Load() || q.stopped.Load() {
		return
	}
	q.horizon.Lock()
	defer q.horizon.Unlock()
	if q.deferred.Load() != 0 || q.oldSize != 0 {
		// Disk-parked events still live in the current file; sealing
		// now would strand the refill backlog behind two segments of
		// bookkeeping for no benefit. Wait for the backlog to clear.
		return
	}
	size, err := q.log.Size()
	if err != nil || size == 0 {
		return
	}
	if err := q.log.Rotate(oldJournalPath(q.cfg.Path)); err != nil {
		q.stats.noteApplyErr(fmt.Errorf("ingest: rotate journal: %w", err))
		return
	}
	q.oldSize = size
	q.prev, q.epoch = q.epoch, new(atomic.Int64)
}

// retireSealed deletes the sealed segment once no event journaled in it
// can still be lost: the sealed submission epoch has drained, no disk
// backlog remains, and the store has fsynced everything applied.
func (q *Queue) retireSealed() {
	if q.prev != nil && q.prev.Load() != 0 {
		return
	}
	if q.deferred.Load() != 0 {
		return
	}
	if err := q.cfg.Store.Sync(); err != nil {
		q.stats.noteApplyErr(err)
		return
	}
	q.horizon.Lock()
	defer q.horizon.Unlock()
	if q.oldSize == 0 {
		q.prev = nil
		return // a concurrent Drain already cleaned up
	}
	if err := os.Remove(oldJournalPath(q.cfg.Path)); err != nil && !os.IsNotExist(err) {
		q.stats.noteApplyErr(fmt.Errorf("ingest: retire sealed journal: %w", err))
		return
	}
	freed := q.oldSize
	q.readOff = max64(0, q.readOff-freed)
	q.recoveredEnd = max64(0, q.recoveredEnd-freed)
	q.oldSize = 0
	q.prev = nil
	q.stats.compactions.Add(1)
	q.stats.compactedByte.Add(uint64(freed))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Drain blocks new submissions, waits until every staged and deferred
// event has been applied, then compacts the journal (store fsync first,
// so no acked event's only copy is lost). It is the cycle's intake
// barrier and the graceful half of Close.
func (q *Queue) Drain(ctx context.Context) error {
	q.gate.Lock()
	defer q.gate.Unlock()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for q.pending.Load() > 0 || q.deferred.Load() > 0 {
		if q.stopped.Load() {
			return ErrClosed
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	if err := q.stats.firstApplyErr(); err != nil {
		// Events may sit in the store partially; keep the journal so a
		// restart can re-apply, and surface the failure.
		return err
	}
	if q.log != nil && !q.stopped.Load() {
		if err := q.cfg.Store.Sync(); err != nil {
			return err
		}
		if err := q.log.Truncate(); err != nil {
			return err
		}
		q.horizon.Lock()
		defer q.horizon.Unlock()
		if rerr := os.Remove(oldJournalPath(q.cfg.Path)); rerr != nil && !os.IsNotExist(rerr) {
			return rerr
		}
		q.readOff, q.recoveredEnd, q.oldSize = 0, 0, 0
	}
	return nil
}

// Close drains gracefully, retires the consumers, and closes the
// journal. Subsequent submissions return ErrClosed.
func (q *Queue) Close() error {
	if !q.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := q.Drain(context.Background())
	if errors.Is(err, ErrClosed) {
		err = nil
	}
	close(q.stop)
	q.done.Wait()
	q.stopped.Store(true)
	if q.log != nil {
		if cerr := q.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Kill simulates a crash: consumers stop immediately, nothing is
// drained or compacted, in-memory events are abandoned. Acked events
// survive in the journal (to the extent the fsync policy promised) and
// are recovered by the next Open on the same path.
func (q *Queue) Kill() {
	if !q.closed.CompareAndSwap(false, true) {
		return
	}
	close(q.stop)
	q.done.Wait()
	q.stopped.Store(true)
	if q.log != nil {
		_ = q.log.Close()
	}
}

// Stats snapshots the queue's counters.
func (q *Queue) Stats() Stats {
	s := q.stats.snapshot()
	s.Depth = int(q.pending.Load())
	s.DiskBacklog = int(q.deferred.Load())
	if q.log != nil {
		s.Journal = q.log.Stats()
	}
	return s
}
