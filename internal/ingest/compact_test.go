package ingest

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

func journalBytes(t *testing.T, path string) int64 {
	t.Helper()
	var total int64
	for _, p := range []string{path, oldJournalPath(path)} {
		if fi, err := os.Stat(p); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// TestCompactionBoundsJournal is the bounded-backlog regression test: a
// producer streams events through a journaled queue with mid-run
// compaction on, every submission is acked (PolicyBlock, nothing shed),
// and the on-disk journal footprint stays bounded instead of growing
// with the event count until the next drain.
func TestCompactionBoundsJournal(t *testing.T) {
	s := testStore(t)
	path := filepath.Join(t.TempDir(), "ingest.log")
	const bound = 16 << 10
	q, err := Open(Config{
		Store: s, Path: path, Policy: PolicyBlock,
		CompactBytes: bound, CompactInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	ctx := context.Background()
	const n = 4000
	var maxSeen int64
	for i := 0; i < n; i++ {
		if err := q.SubmitMeasurements(ctx, []store.Measurement{meas("p1", int64(i), 1)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if i%64 == 0 {
			if sz := journalBytes(t, path); sz > maxSeen {
				maxSeen = sz
			}
			// Steady load, not one infinite burst: give the ticker-driven
			// compactor its chance to run between windows, as it would
			// have under any real event-time pacing.
			time.Sleep(time.Millisecond)
		}
	}
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions ran (max journal footprint %d bytes)", maxSeen)
	}
	// An unbounded journal would hold all n events (~150B each). With
	// compaction the footprint tops out near the bound: one live
	// journal growing back plus a sealed segment awaiting retirement,
	// with slack for the retirement lag.
	if limit := int64(6 * bound); maxSeen > limit {
		t.Errorf("journal footprint peaked at %d bytes, want <= %d (compactions=%d)", maxSeen, limit, st.Compactions)
	}
	// Nothing lost across rotations: every acked measurement landed.
	if got := len(s.Measurements(store.MeasurementFilter{Actor: "p1"})); got != n {
		t.Errorf("measurements in store = %d, want %d", got, n)
	}
	if _, err := os.Stat(oldJournalPath(path)); !os.IsNotExist(err) {
		t.Errorf("sealed segment not cleaned up after drain: %v", err)
	}
}

// writeJournalLines appends framed events straight to a journal file,
// standing in for a crashed predecessor's acked appends.
func writeJournalLines(t *testing.T, path string, events []event) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, ev := range events {
		kind, data, err := marshalEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		line, err := encodeLine(kind, false, json.RawMessage(data))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(line); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryAcrossSealedSegment: a crash between rotation and
// retirement leaves the journal split across <path>.old and <path>.
// Open must recover events from both segments in order, and the
// compactor must retire the sealed segment once the backlog clears —
// even with size-triggered compaction off.
func TestRecoveryAcrossSealedSegment(t *testing.T) {
	s := testStore(t)
	path := filepath.Join(t.TempDir(), "ingest.log")
	var old, cur []event
	for i := 1; i <= 5; i++ {
		rec := offerRec(uint64(i), "p1", store.OfferReceived)
		old = append(old, event{offer: &rec})
	}
	for i := 6; i <= 8; i++ {
		rec := offerRec(uint64(i), "p1", store.OfferReceived)
		cur = append(cur, event{offer: &rec})
	}
	writeJournalLines(t, oldJournalPath(path), old)
	writeJournalLines(t, path, cur)

	q, err := Open(Config{Store: s, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if got := q.Stats().Recovered; got != 8 {
		t.Fatalf("recovered = %d, want 8", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if _, ok := s.GetOffer(flexoffer.ID(i)); !ok {
			t.Errorf("offer %d not recovered", i)
		}
	}
	if _, err := os.Stat(oldJournalPath(path)); !os.IsNotExist(err) {
		t.Errorf("sealed segment survives recovery drain: %v", err)
	}
}

// TestCompactorRetiresRecoveredSegment: without any drain, the
// background compactor alone must notice a recovered sealed segment and
// delete it once its events are applied and synced.
func TestCompactorRetiresRecoveredSegment(t *testing.T) {
	s := testStore(t)
	path := filepath.Join(t.TempDir(), "ingest.log")
	rec := offerRec(1, "p1", store.OfferReceived)
	writeJournalLines(t, oldJournalPath(path), []event{{offer: &rec}})

	q, err := Open(Config{Store: s, Path: path, CompactInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(oldJournalPath(path)); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sealed segment never retired (stats %+v)", q.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := s.GetOffer(flexoffer.ID(1)); !ok {
		t.Error("recovered offer missing from store")
	}
	if q.Stats().Compactions != 1 {
		t.Errorf("compactions = %d, want 1", q.Stats().Compactions)
	}
}
