// Package ingest is the node's durable asynchronous intake path: the
// embedded analog of an event-log backbone (Kafka-style topics) for an
// EDMS whose BRPs take continuous flex-offer and measurement streams
// from millions of prosumers.
//
// Producers append offer and measurement-batch events to a Queue and
// are acked as soon as the event is committed to the ingest journal — a
// group-committed append-only log reusing the store's WAL committer
// (store.GroupLog), so concurrent producers coalesce into one physical
// write (and, under SyncAlways, one fsync) per round. Consumer
// goroutines drain the queue into the striped store asynchronously,
// coalescing many small events into large ApplyBatch /
// PutMeasurementsBatch rounds; the synchronous request/reply store
// round-trip leaves the caller's critical path entirely.
//
// The queue is bounded. When it fills, the configured Policy decides
// what backpressure looks like:
//
//   - PolicyBlock: the producer waits for space (honoring its context)
//     — pushback propagates to the transport;
//   - PolicyShed: the producer gets ErrOverloaded immediately and
//     nothing is journaled — load is shed explicitly, never silently;
//   - PolicyDefer: the event is journaled (durable, acked) but kept
//     out of memory; consumers pick it back up from disk once the live
//     queue drains — bounded memory, unbounded (disk-backed) backlog.
//
// Durability and recovery: an ack means the event reached the journal
// under the journal's fsync policy. On restart, Open replays the
// journal and re-applies every recorded event; applies are idempotent
// upserts (and offer applies never downgrade a record that progressed
// to scheduled/executed), so re-applying events that had already
// reached the store converges. The journal is compacted — truncated to
// empty after an explicit store fsync — when a Drain or Close proves
// every event has been applied.
//
// Delivery is at-least-once: a producer whose ack errs mid-way may
// still have its event applied.
package ingest

import (
	"errors"
	"fmt"
	"time"

	"mirabel/internal/store"
)

// ErrOverloaded is returned by submissions under PolicyShed when the
// queue is full. Match with errors.Is; callers turn it into typed
// pushback toward their own producers.
var ErrOverloaded = errors.New("ingest: queue overloaded")

// ErrClosed is returned by submissions to a closed (or killed) queue.
var ErrClosed = errors.New("ingest: queue closed")

// Policy selects what happens to a producer when the bounded queue is
// full.
type Policy int

const (
	// PolicyBlock makes the producer wait for space (default).
	PolicyBlock Policy = iota
	// PolicyShed fails the producer fast with ErrOverloaded.
	PolicyShed
	// PolicyDefer journals the event (durable, acked) without holding
	// it in memory; consumers re-read it from disk once the live queue
	// drains. Requires a journal (Config.Path).
	PolicyDefer
)

// String names the policy as its -ingest-policy flag value.
func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyShed:
		return "shed"
	case PolicyDefer:
		return "defer"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a flag value to its Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return PolicyBlock, nil
	case "shed":
		return PolicyShed, nil
	case "defer":
		return PolicyDefer, nil
	default:
		return 0, fmt.Errorf("ingest: unknown policy %q (want block | shed | defer)", s)
	}
}

// Config assembles a Queue.
type Config struct {
	// Store receives the drained events. Required.
	Store *store.Store
	// Path is the ingest journal file. Empty means a volatile queue:
	// no durability, acks are immediate, recovery is impossible.
	Path string
	// Sync is the journal's fsync policy (store.SyncFlush by default:
	// acks are flush-to-OS durable; store.SyncAlways makes every ack
	// machine-crash durable at one group fsync per coalesced round).
	Sync store.SyncPolicy
	// SyncInterval is the background fsync cadence under SyncInterval.
	SyncInterval time.Duration
	// Queue bounds the in-memory event backlog (default 4096 events).
	Queue int
	// Policy picks the backpressure behaviour when the queue is full.
	Policy Policy
	// Consumers is the number of drain goroutines (default 2).
	Consumers int
	// MaxBatch bounds how many queued events one consumer coalesces
	// into a single store apply (default 256).
	MaxBatch int
	// CompactBytes, when positive, bounds the journal between drains: a
	// background compactor seals the journal into a side segment
	// (<Path>.old) once it outgrows this many bytes, and deletes the
	// segment as soon as every event recorded in it has been applied
	// and the store fsynced. Producers are only paused for the rename
	// itself, never for the wait. Zero disables mid-run compaction (the
	// journal is still truncated by Drain/Close).
	CompactBytes int64
	// CompactInterval is the compactor's polling cadence (default
	// 100ms). Only used when CompactBytes is positive.
	CompactInterval time.Duration
	// OnMeasurements, when set, observes every measurement batch as it
	// is applied to the store — the forecast-maintenance hook. Because
	// it hangs off the single apply funnel, it sees live consumed
	// batches, PolicyDefer events re-admitted from the disk backlog,
	// and journal recovery replays alike. It is called from consumer
	// goroutines and must be safe for concurrent use; the slice must
	// not be retained.
	OnMeasurements func([]store.Measurement)
}
