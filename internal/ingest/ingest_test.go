package ingest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mirabel/internal/flexoffer"
	"mirabel/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func offerRec(id uint64, owner string, state store.OfferState) store.OfferRecord {
	return store.OfferRecord{
		Offer: &flexoffer.FlexOffer{
			ID:            flexoffer.ID(id),
			Prosumer:      owner,
			EarliestStart: 10,
			LatestStart:   14,
			AssignBefore:  8,
			Profile:       []flexoffer.Slice{{EnergyMin: 1, EnergyMax: 3}},
		},
		Owner: owner,
		State: state,
	}
}

func meas(actor string, slot int64, kwh float64) store.Measurement {
	return store.Measurement{Actor: actor, EnergyType: "elec", Slot: flexoffer.Time(slot), KWh: kwh}
}

// newIdleQueue builds a queue with no consumer goroutines, so tests can
// fill the bounded channel deterministically. startConsumers attaches
// the drain side when the test is ready.
func newIdleQueue(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q := &Queue{
		cfg:        cfg,
		ch:         make(chan event, cfg.Queue),
		stop:       make(chan struct{}),
		refillKick: make(chan struct{}, 1),
		epoch:      new(atomic.Int64),
	}
	if cfg.Path != "" {
		log, err := store.OpenGroupLog(cfg.Path, cfg.Sync, cfg.SyncInterval)
		if err != nil {
			t.Fatalf("open journal: %v", err)
		}
		q.log = log
	}
	return q
}

func startConsumers(q *Queue, n int) {
	q.done.Add(n)
	for i := 0; i < n; i++ {
		go q.consume()
	}
}

func TestBlockPolicyHonorsContext(t *testing.T) {
	s := testStore(t)
	q := newIdleQueue(t, Config{Store: s, Queue: 1, Policy: PolicyBlock, MaxBatch: 8, Consumers: 1})
	ctx := context.Background()
	if err := q.SubmitOffer(ctx, offerRec(1, "p1", store.OfferReceived)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Queue full, no consumers: the second submit must block until its
	// context expires.
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	err := q.SubmitOffer(tctx, offerRec(2, "p1", store.OfferReceived))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked submit err = %v, want DeadlineExceeded", err)
	}
	startConsumers(q, 1)
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, ok := s.GetOffer(1); !ok {
		t.Fatal("offer 1 not applied after close")
	}
}

func TestShedPolicyReturnsOverloaded(t *testing.T) {
	s := testStore(t)
	q := newIdleQueue(t, Config{Store: s, Queue: 1, Policy: PolicyShed, MaxBatch: 8, Consumers: 1})
	ctx := context.Background()
	if err := q.SubmitMeasurements(ctx, []store.Measurement{meas("p1", 1, 2)}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	err := q.SubmitMeasurements(ctx, []store.Measurement{meas("p1", 2, 2)})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow submit err = %v, want ErrOverloaded", err)
	}
	if got := q.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	startConsumers(q, 1)
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := len(s.Measurements(store.MeasurementFilter{Actor: "p1"})); got != 1 {
		t.Fatalf("measurements = %d, want 1 (second was shed)", got)
	}
}

func TestDeferPolicyParksOnDiskAndRefills(t *testing.T) {
	s := testStore(t)
	path := filepath.Join(t.TempDir(), "ingest.log")
	q := newIdleQueue(t, Config{Store: s, Path: path, Queue: 1, Policy: PolicyDefer, MaxBatch: 8, Consumers: 1})
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		if err := q.SubmitOffer(ctx, offerRec(uint64(i), "p1", store.OfferReceived)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := q.deferred.Load(); got != 2 {
		t.Fatalf("deferred backlog = %d, want 2 (queue holds 1)", got)
	}
	startConsumers(q, 1)
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, ok := s.GetOffer(flexoffer.ID(i)); !ok {
			t.Fatalf("offer %d missing after drain", i)
		}
	}
	st := q.Stats()
	if st.Deferred != 2 || st.DiskBacklog != 0 {
		t.Fatalf("stats deferred=%d backlog=%d, want 2/0", st.Deferred, st.DiskBacklog)
	}
	// Drain compacted the fully-applied journal.
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("journal size after drain = %v/%v, want 0", fi, err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestDeferRequiresJournal(t *testing.T) {
	if _, err := Open(Config{Store: testStore(t), Policy: PolicyDefer}); err == nil {
		t.Fatal("Open accepted PolicyDefer without a journal path")
	}
}

func TestCoalescing(t *testing.T) {
	s := testStore(t)
	q := newIdleQueue(t, Config{Store: s, Queue: 16, Policy: PolicyBlock, MaxBatch: 16, Consumers: 1})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := q.SubmitMeasurements(ctx, []store.Measurement{meas("p1", int64(i), 1)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	startConsumers(q, 1)
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := q.Stats()
	if st.MaxBatchSeen != 10 {
		t.Fatalf("MaxBatchSeen = %d, want 10 (one coalesced apply)", st.MaxBatchSeen)
	}
	if st.Consumed != 10 {
		t.Fatalf("Consumed = %d, want 10", st.Consumed)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestGuardedOfferApplyNeverDowngrades(t *testing.T) {
	s := testStore(t)
	scheduled := offerRec(7, "p1", store.OfferScheduled)
	if err := s.PutOffer(scheduled); err != nil {
		t.Fatalf("seed offer: %v", err)
	}
	q, err := Open(Config{Store: s, Queue: 8, Policy: PolicyBlock})
	if err != nil {
		t.Fatalf("open queue: %v", err)
	}
	// A stale "received" duplicate (journal replay, retransmit) must not
	// roll the offer's state back.
	if err := q.SubmitOffer(context.Background(), offerRec(7, "p1", store.OfferReceived)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rec, ok := s.GetOffer(7)
	if !ok || rec.State != store.OfferScheduled {
		t.Fatalf("offer state = %v (ok=%v), want scheduled preserved", rec.State, ok)
	}
}

func TestConcurrentProducersDrainClean(t *testing.T) {
	s := testStore(t)
	path := filepath.Join(t.TempDir(), "ingest.log")
	q, err := Open(Config{Store: s, Path: path, Queue: 64, Policy: PolicyBlock, Consumers: 3, MaxBatch: 32})
	if err != nil {
		t.Fatalf("open queue: %v", err)
	}
	const producers, per = 8, 50
	var wg sync.WaitGroup
	ctx := context.Background()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			actor := fmt.Sprintf("p%d", p)
			for i := 0; i < per; i++ {
				if err := q.SubmitMeasurements(ctx, []store.Measurement{meas(actor, int64(i), 1)}); err != nil {
					t.Errorf("submit %s/%d: %v", actor, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := len(s.Measurements(store.MeasurementFilter{})); got != producers*per {
		t.Fatalf("measurements after drain = %d, want %d", got, producers*per)
	}
	st := q.Stats()
	if st.Enqueued != producers*per || st.Consumed != producers*per {
		t.Fatalf("enqueued/consumed = %d/%d, want %d", st.Enqueued, st.Consumed, producers*per)
	}
	if st.Depth != 0 || st.DiskBacklog != 0 {
		t.Fatalf("depth/backlog after drain = %d/%d, want 0/0", st.Depth, st.DiskBacklog)
	}
	if err := q.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCrashRecovery is the acceptance test: every event acked before a
// kill must be present in the store after restart — even when the
// store's own copy is gone, because the ingest journal retains events
// until a drain proves them applied AND synced.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ingest.log")
	s1 := testStore(t)
	q1, err := Open(Config{Store: s1, Path: path, Sync: store.SyncAlways, Queue: 128, Policy: PolicyBlock, Consumers: 2})
	if err != nil {
		t.Fatalf("open q1: %v", err)
	}
	ctx := context.Background()
	const offers, batches = 40, 20
	for i := 1; i <= offers; i++ {
		if err := q1.SubmitOffer(ctx, offerRec(uint64(i), "p1", store.OfferReceived)); err != nil {
			t.Fatalf("submit offer %d: %v", i, err)
		}
	}
	for i := 0; i < batches; i++ {
		if err := q1.SubmitMeasurements(ctx, []store.Measurement{meas("p1", int64(i), 1.5)}); err != nil {
			t.Fatalf("submit meas %d: %v", i, err)
		}
	}
	// Crash: no drain, no compaction. Whatever consumers managed to
	// apply is irrelevant — the journal is the source of truth.
	q1.Kill()
	if err := q1.SubmitOffer(ctx, offerRec(99, "p1", store.OfferReceived)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after kill = %v, want ErrClosed", err)
	}

	// Simulate a torn tail from the crash: a partial line must not
	// poison recovery.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("append torn tail: %v", err)
	}
	if _, err := f.WriteString(`{"kind":"offer","data":{"tru`); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	// Restart against a BRAND NEW empty store: recovery must rebuild
	// every acked event from the journal alone.
	s2 := testStore(t)
	q2, err := Open(Config{Store: s2, Path: path, Sync: store.SyncAlways, Queue: 128, Policy: PolicyBlock, Consumers: 2})
	if err != nil {
		t.Fatalf("reopen queue: %v", err)
	}
	if got := q2.Stats().Recovered; got != offers+batches {
		t.Fatalf("Recovered = %d, want %d", got, offers+batches)
	}
	if err := q2.Drain(ctx); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	for i := 1; i <= offers; i++ {
		if _, ok := s2.GetOffer(flexoffer.ID(i)); !ok {
			t.Fatalf("acked offer %d lost across crash", i)
		}
	}
	if got := len(s2.Measurements(store.MeasurementFilter{Actor: "p1"})); got != batches {
		t.Fatalf("measurements after recovery = %d, want %d", got, batches)
	}
	// The drain proved everything applied: journal is compact again.
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after recovery drain: size=%v err=%v, want 0", fi, err)
	}
	if err := q2.Close(); err != nil {
		t.Fatalf("close q2: %v", err)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"block", PolicyBlock}, {"shed", PolicyShed}, {"defer", PolicyDefer}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() roundtrip = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus")
	}
}
