// Package mirabel's root benchmarks regenerate every figure of the
// paper's evaluation (§9) as testing.B benchmarks. Each figure panel has
// one bench; cmd/mirabel-bench prints the full series sweeps. Custom
// metrics carry the figure's y-axis value (aggregate counts, SMAPE,
// schedule cost) alongside ns/op.
package mirabel

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mirabel/internal/agg"
	"mirabel/internal/comm"
	"mirabel/internal/core"
	"mirabel/internal/flexoffer"
	"mirabel/internal/forecast"
	"mirabel/internal/market"
	"mirabel/internal/optimize"
	"mirabel/internal/sched"
	"mirabel/internal/store"
	"mirabel/internal/workload"
)

// benchOffers is the per-iteration dataset size of the Figure 5 benches
// (the paper sweeps to 800 000; cmd/mirabel-bench does the full sweep).
const benchOffers = 100000

var figParams = []struct {
	name   string
	params agg.Params
}{
	{"P0", agg.ParamsP0},
	{"P1", agg.ParamsP1},
	{"P2", agg.ParamsP2},
	{"P3", agg.ParamsP3},
}

func benchDataset(b *testing.B, n int) []agg.FlexOfferUpdate {
	b.Helper()
	offers := workload.GenerateFlexOffers(workload.FlexOfferConfig{Count: n, Seed: 1})
	ups := make([]agg.FlexOfferUpdate, len(offers))
	for i, f := range offers {
		ups[i] = agg.FlexOfferUpdate{Kind: agg.Insert, Offer: f}
	}
	return ups
}

// BenchmarkFig5aCompression regenerates Figure 5a: the number of
// aggregated flex-offers per parameter combination (metric
// "aggregates").
func BenchmarkFig5aCompression(b *testing.B) {
	ups := benchDataset(b, benchOffers)
	for _, tc := range figParams {
		b.Run(tc.name, func(b *testing.B) {
			var aggs int
			for i := 0; i < b.N; i++ {
				p := agg.NewPipeline(tc.params, agg.BinPackerOptions{})
				if _, err := p.Apply(ups...); err != nil {
					b.Fatal(err)
				}
				aggs = p.CurrentMetrics().Aggregates
			}
			b.ReportMetric(float64(aggs), "aggregates")
			b.ReportMetric(float64(benchOffers)/float64(aggs), "compression")
		})
	}
}

// BenchmarkFig5bAggregationTime regenerates Figure 5b: aggregation time
// per parameter combination (ns/op is the figure's y-axis).
func BenchmarkFig5bAggregationTime(b *testing.B) {
	ups := benchDataset(b, benchOffers)
	for _, tc := range figParams {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := agg.NewPipeline(tc.params, agg.BinPackerOptions{})
				if _, err := p.Apply(ups...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5cFlexLoss regenerates Figure 5c: time-flexibility loss
// per flex-offer (metric "loss_slots/offer").
func BenchmarkFig5cFlexLoss(b *testing.B) {
	ups := benchDataset(b, benchOffers)
	for _, tc := range figParams {
		b.Run(tc.name, func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				p := agg.NewPipeline(tc.params, agg.BinPackerOptions{})
				if _, err := p.Apply(ups...); err != nil {
					b.Fatal(err)
				}
				loss = p.CurrentMetrics().LossPerOffer
			}
			b.ReportMetric(loss, "loss_slots/offer")
		})
	}
}

// BenchmarkFig5dDisaggregation regenerates Figure 5d: disaggregation
// time (ns/op) against the aggregation time of the same dataset (metric
// "disagg/agg_ratio"; the paper reports ≈ 0.36).
func BenchmarkFig5dDisaggregation(b *testing.B) {
	ups := benchDataset(b, benchOffers)
	for _, tc := range figParams {
		b.Run(tc.name, func(b *testing.B) {
			p := agg.NewPipeline(tc.params, agg.BinPackerOptions{})
			t0 := time.Now()
			if _, err := p.Apply(ups...); err != nil {
				b.Fatal(err)
			}
			aggTime := time.Since(t0)
			// Mid-flexibility schedules for every aggregate.
			scheds := make([]*flexoffer.Schedule, 0, len(p.Aggregates()))
			for _, a := range p.Aggregates() {
				energy := make([]float64, a.Offer.NumSlices())
				for j, sl := range a.Offer.Profile {
					energy[j] = (sl.EnergyMin + sl.EnergyMax) / 2
				}
				scheds = append(scheds, &flexoffer.Schedule{
					OfferID: a.Offer.ID,
					Start:   a.Offer.EarliestStart + a.Offer.TimeFlexibility()/2,
					Energy:  energy,
				})
			}
			b.ResetTimer()
			var disaggTime time.Duration
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := p.Disaggregate(scheds); err != nil {
					b.Fatal(err)
				}
				disaggTime = time.Since(t0)
			}
			b.ReportMetric(disaggTime.Seconds()/aggTime.Seconds(), "disagg/agg_ratio")
		})
	}
}

// BenchmarkFig4aEstimators regenerates Figure 4a: HWT parameter
// estimation with the three global search strategies; the metric "smape"
// is the accuracy each strategy reaches within the fixed budget.
func BenchmarkFig4aEstimators(b *testing.B) {
	demand := workload.DemandSeries(workload.DemandConfig{Days: 28, Seed: 1})
	vals := demand.Values()
	for _, est := range []optimize.Estimator{
		&optimize.RandomRestartNelderMead{},
		&optimize.SimulatedAnnealing{},
		optimize.RandomSearch{},
	} {
		b.Run(est.Name(), func(b *testing.B) {
			var smape float64
			for i := 0; i < b.N; i++ {
				_, res, err := forecast.FitHWT(vals, []int{48, 336}, forecast.FitConfig{
					Estimator: est,
					Options:   optimize.Options{MaxEvaluations: 300, Seed: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
				smape = res.Value
			}
			b.ReportMetric(smape, "smape")
		})
	}
}

// BenchmarkFig4bHorizon regenerates Figure 4b: forecast accuracy at
// growing horizons for the demand and wind series (metric "smape").
func BenchmarkFig4bHorizon(b *testing.B) {
	series := map[string][]float64{
		"demand": workload.DemandSeries(workload.DemandConfig{Days: 28, Seed: 1}).Values(),
		"wind":   workload.WindSeries(workload.WindConfig{Days: 28, Seed: 1}).Values(),
	}
	for _, name := range []string{"demand", "wind"} {
		vals := series[name]
		split := len(vals) - 2*336
		for _, h := range []int{1, 48, 192} { // 30 min, 1 day, 4 days
			b.Run(fmt.Sprintf("%s/h%d", name, h), func(b *testing.B) {
				var smape float64
				for i := 0; i < b.N; i++ {
					m, _, err := forecast.FitHWT(vals[:split], []int{48, 336}, forecast.FitConfig{
						Options: optimize.Options{MaxEvaluations: 200, Seed: 3},
					})
					if err != nil {
						b.Fatal(err)
					}
					smape, err = forecast.HorizonSMAPE(m, vals[split:], h)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(smape, "smape")
			})
		}
	}
}

// BenchmarkFig6Scheduling regenerates Figure 6: schedule cost reached by
// the evolutionary algorithm and the randomized greedy search on intra-
// day scenarios of growing size, within a budget that scales like the
// paper's time axes (metric "cost_eur").
func BenchmarkFig6Scheduling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: n, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		budget := time.Duration(n) * time.Millisecond
		if budget < 50*time.Millisecond {
			budget = 50 * time.Millisecond
		}
		for _, s := range []sched.Scheduler{&sched.Evolutionary{}, &sched.RandomizedGreedy{}} {
			b.Run(fmt.Sprintf("%s/%d", s.Name(), n), func(b *testing.B) {
				var cost float64
				for i := 0; i < b.N; i++ {
					res, err := s.Schedule(context.Background(), p, sched.Options{TimeBudget: budget, Seed: 7})
					if err != nil {
						b.Fatal(err)
					}
					cost = res.Cost
				}
				b.ReportMetric(cost, "cost_eur")
			})
		}
	}
}

// --- scheduler hot-path benchmarks -------------------------------------

// benchSchedInstance is the tentpole's reference instance: 64
// aggregated flex-offers on a 96-slot day with a market attached, so
// every full evaluation pays real Market.Quote calls.
func benchSchedInstance(b *testing.B) *sched.Problem {
	b.Helper()
	prices := workload.PriceSeries(workload.PriceConfig{Days: 2, Seed: 1})
	m, err := market.NewDayAhead(market.Config{Prices: prices, CapacityKWh: 2000})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: 64, Seed: 33, Market: m})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkSchedEvalThroughput measures candidate-evaluation throughput
// on the 64-offer/96-slot market instance: the seed's full
// Problem.Evaluate (fresh net slice + Market.Quote per slot) against
// the compiled evaluator (quote table, reused state) and against
// single-offer delta updates — the EA's steady-state operation. The
// "evals/s" metric is the headline: delta+compiled must be ≥5× full.
func BenchmarkSchedEvalThroughput(b *testing.B) {
	p := benchSchedInstance(b)
	res, err := (&sched.RandomizedGreedy{}).Schedule(context.Background(), p, sched.Options{MaxIterations: 1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sol := res.Solution
	c, err := sched.Compile(p)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			p.Evaluate(sol)
		}
		b.ReportMetric(float64(b.N)/time.Since(t0).Seconds(), "evals/s")
	})
	b.Run("compiled", func(b *testing.B) {
		ev := c.NewEval()
		b.ReportAllocs()
		b.ResetTimer()
		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			ev.Init(sol)
		}
		b.ReportMetric(float64(b.N)/time.Since(t0).Seconds(), "evals/s")
	})
	b.Run("delta", func(b *testing.B) {
		ev := c.NewEval()
		ev.Init(sol)
		lo, hi := p.StartWindow(p.Offers[0])
		flip := sol.Placements[0].Start
		other := lo
		if flip == lo && hi > lo {
			other = lo + 1
		}
		energy := sol.Placements[0].Energy
		b.ReportAllocs()
		b.ResetTimer()
		t0 := time.Now()
		for i := 0; i < b.N; i++ {
			ev.SetPlacement(0, other, energy)
			flip, other = other, flip
		}
		b.ReportMetric(float64(b.N)/time.Since(t0).Seconds(), "evals/s")
	})
}

// BenchmarkSchedParallelSpeedup measures the portfolio's
// quality-per-budget at 1/2/4/8 workers on the reference instance: the
// "cost_eur" metric is what each worker count reaches within a fixed
// 150 ms budget (lower is better; on multi-core hardware more workers
// evaluate proportionally more candidates in the same wall time).
func BenchmarkSchedParallelSpeedup(b *testing.B) {
	p := benchSchedInstance(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := (&sched.Parallel{Workers: workers}).Schedule(context.Background(), p,
					sched.Options{TimeBudget: 150 * time.Millisecond, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "cost_eur")
		})
	}
}

// BenchmarkAblationBinPacker measures the bin-packer's overhead and its
// effect on aggregate counts (DESIGN.md §6: optional stage).
func BenchmarkAblationBinPacker(b *testing.B) {
	ups := benchDataset(b, 50000)
	for _, tc := range []struct {
		name string
		opts agg.BinPackerOptions
	}{
		{"off", agg.BinPackerOptions{}},
		{"max50members", agg.BinPackerOptions{MaxMembers: 50}},
		{"max2MWh", agg.BinPackerOptions{MaxEnergyKWh: 2000}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var aggs int
			for i := 0; i < b.N; i++ {
				p := agg.NewPipeline(agg.ParamsP3, tc.opts)
				if _, err := p.Apply(ups...); err != nil {
					b.Fatal(err)
				}
				aggs = p.CurrentMetrics().Aggregates
			}
			b.ReportMetric(float64(aggs), "aggregates")
		})
	}
}

// BenchmarkAblationEnergyFill compares the greedy imbalance-canceling
// energy fill against the midpoint baseline (DESIGN.md §6).
func BenchmarkAblationEnergyFill(b *testing.B) {
	p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: 200, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		fill sched.FillMode
	}{
		{"greedy", sched.FillGreedy},
		{"midpoint", sched.FillMidpoint},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := (&sched.RandomizedGreedy{Fill: tc.fill}).Schedule(context.Background(), p, sched.Options{MaxIterations: 5, Seed: 10})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "cost_eur")
		})
	}
}

// BenchmarkAblationWarmStart compares cold parameter estimation against
// a warm start from previously estimated parameters (the context-aware
// adaptation path).
func BenchmarkAblationWarmStart(b *testing.B) {
	vals := workload.DemandSeries(workload.DemandConfig{Days: 21, Seed: 4}).Values()
	good, _, err := forecast.FitHWT(vals, []int{48}, forecast.FitConfig{
		Options: optimize.Options{MaxEvaluations: 600, Seed: 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		start []float64
	}{
		{"cold", nil},
		{"warm", good.Params()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var smape float64
			for i := 0; i < b.N; i++ {
				_, res, err := forecast.FitHWT(vals, []int{48}, forecast.FitConfig{
					Options: optimize.Options{MaxEvaluations: 60, Seed: 6},
					Start:   tc.start,
				})
				if err != nil {
					b.Fatal(err)
				}
				smape = res.Value
			}
			b.ReportMetric(smape, "smape")
		})
	}
}

// BenchmarkAblationTimeFlexibility sweeps the offers' time flexibility
// (§6 research directions: "the complexity of the search space heavily
// depends also on the start time flexibilities of the included
// flex-offers") and reports the cost the greedy search reaches within a
// fixed budget plus the search-space size.
func BenchmarkAblationTimeFlexibility(b *testing.B) {
	for _, maxTF := range []int{4, 16, 64} {
		p, err := sched.BuildScenario(sched.ScenarioConfig{Offers: 200, Seed: 31, MaxTFSlots: maxTF})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("maxTF%d", maxTF), func(b *testing.B) {
			var cost float64
			for i := 0; i < b.N; i++ {
				res, err := (&sched.RandomizedGreedy{}).Schedule(context.Background(), p, sched.Options{TimeBudget: 100 * time.Millisecond, Seed: 32})
				if err != nil {
					b.Fatal(err)
				}
				cost = res.Cost
			}
			b.ReportMetric(cost, "cost_eur")
			b.ReportMetric(math.Log10(p.CountSolutions()), "log10_search_space")
		})
	}
}

// BenchmarkAblationIncrementalAggregation compares incremental
// maintenance (one batch per 1000 offers) against one-shot aggregation
// from scratch.
func BenchmarkAblationIncrementalAggregation(b *testing.B) {
	ups := benchDataset(b, 50000)
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := agg.NewPipeline(agg.ParamsP3, agg.BinPackerOptions{})
			if _, err := p.Apply(ups...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batches-of-1000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := agg.NewPipeline(agg.ParamsP3, agg.BinPackerOptions{})
			for off := 0; off < len(ups); off += 1000 {
				end := off + 1000
				if end > len(ups) {
					end = len(ups)
				}
				if _, err := p.Apply(ups[off:end]...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAggChurn measures one churn cycle — 1% of a 100 000-offer
// population replaced, applied as a single accumulate-then-process
// batch — on the live incremental pipeline against rebuilding the whole
// pipeline from scratch with the post-churn population. The batched
// delta engine only pays for touched aggregates (boundary owners
// rebuild, everything else is an O(profile) delta), so the incremental
// path should beat from-scratch by well over an order of magnitude.
func BenchmarkAggChurn(b *testing.B) {
	const n = benchOffers
	const churn = n / 100
	offers := workload.GenerateFlexOffers(workload.FlexOfferConfig{Count: n, Seed: 1})

	// churnStep replaces churn offers starting at cursor with clones
	// under fresh IDs and returns the delete+insert batch.
	nextID := flexoffer.ID(10 * n)
	churnStep := func(live []*flexoffer.FlexOffer, cursor int) []agg.FlexOfferUpdate {
		batch := make([]agg.FlexOfferUpdate, 0, 2*churn)
		for j := 0; j < churn; j++ {
			idx := (cursor + j) % n
			f := live[idx]
			nf := *f
			nextID++
			nf.ID = nextID
			live[idx] = &nf
			batch = append(batch,
				agg.FlexOfferUpdate{Kind: agg.Delete, Offer: f},
				agg.FlexOfferUpdate{Kind: agg.Insert, Offer: &nf})
		}
		return batch
	}

	b.Run("incremental", func(b *testing.B) {
		pipe := agg.NewPipeline(agg.ParamsP3, agg.BinPackerOptions{})
		live := append([]*flexoffer.FlexOffer(nil), offers...)
		ups := make([]agg.FlexOfferUpdate, n)
		for i, f := range live {
			ups[i] = agg.FlexOfferUpdate{Kind: agg.Insert, Offer: f}
		}
		if _, err := pipe.Apply(ups...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			batch := churnStep(live, i*churn%n)
			b.StartTimer()
			if err := pipe.Accumulate(batch...); err != nil {
				b.Fatal(err)
			}
			pipe.Process()
		}
	})

	b.Run("from-scratch", func(b *testing.B) {
		live := append([]*flexoffer.FlexOffer(nil), offers...)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			churnStep(live, i*churn%n)
			ups := make([]agg.FlexOfferUpdate, n)
			for k, f := range live {
				ups[k] = agg.FlexOfferUpdate{Kind: agg.Insert, Offer: f}
			}
			b.StartTimer()
			pipe := agg.NewPipeline(agg.ParamsP3, agg.BinPackerOptions{})
			if _, err := pipe.Apply(ups...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- storage-engine benchmarks ----------------------------------------

// benchStoreFacts populates an in-memory store with a synthetic meter
// stream of n facts over 128 actors.
func benchStoreFacts(b *testing.B, n int) *store.Store {
	b.Helper()
	st := store.NewInMemory()
	if err := st.PutMeasurementsBatch(workload.GenerateMeasurements(workload.MeasurementConfig{Count: n, Actors: 128, Seed: 1})); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkStoreMeasurementsWindow measures the indexed slot-window
// query against fact tables of growing size. The series-clustered
// layout makes the cost track the result rows (metric "rows"), not the
// table: ns/op should stay near-flat across the 16× table sweep.
func BenchmarkStoreMeasurementsWindow(b *testing.B) {
	for _, n := range []int{20000, 80000, 320000} {
		st := benchStoreFacts(b, n)
		slots := flexoffer.Time(n / 128)
		filter := store.MeasurementFilter{Actor: workload.MeasurementActor(5), EnergyType: "demand",
			FromSlot: slots / 2, ToSlot: slots/2 + 64}
		b.Run(fmt.Sprintf("facts%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var rows int
			for i := 0; i < b.N; i++ {
				rows = len(st.Measurements(filter))
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkStoreSeriesBySlot measures the forecast-input materialization
// over a fixed window while the fact table grows around it.
func BenchmarkStoreSeriesBySlot(b *testing.B) {
	for _, n := range []int{20000, 80000, 320000} {
		st := benchStoreFacts(b, n)
		slots := flexoffer.Time(n / 128)
		f := store.MeasurementFilter{Actor: workload.MeasurementActor(9), EnergyType: "demand"}
		b.Run(fmt.Sprintf("facts%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st.SeriesBySlot(f, slots/4, slots/4+96)
			}
		})
	}
}

// BenchmarkStoreOffersByState measures the by-state secondary index: a
// fixed 500-record result fished out of offer tables of growing size.
func BenchmarkStoreOffersByState(b *testing.B) {
	for _, n := range []int{2000, 8000, 32000} {
		st := store.NewInMemory()
		offers := workload.GenerateFlexOffers(workload.FlexOfferConfig{Count: n, Seed: 1})
		for i, f := range offers {
			state := store.OfferRejected
			if i < 500 {
				state = store.OfferScheduled
			}
			if err := st.PutOffer(store.OfferRecord{Offer: f, Owner: fmt.Sprintf("p%d", i%50), State: state}); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("offers%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var hits int
			for i := 0; i < b.N; i++ {
				hits = len(st.Offers(store.OfferFilter{State: store.OfferScheduled}))
			}
			b.ReportMetric(float64(hits), "hits")
		})
	}
}

// BenchmarkStoreIngest compares single-put ingestion against the
// batched path (one WAL group per 256 facts) on a durable store; the
// "recs/group" metric is the committer's amortization factor.
func BenchmarkStoreIngest(b *testing.B) {
	facts := workload.GenerateMeasurements(workload.MeasurementConfig{Count: 100000, Actors: 128, Seed: 1})
	b.Run("single", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.PutMeasurement(facts[i%len(facts)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch256", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := (i * 256) % (len(facts) - 256)
			if err := st.PutMeasurementsBatch(facts[lo : lo+256]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ls := st.WALStats()
		if ls.Groups > 0 {
			b.ReportMetric(float64(ls.Records)/float64(ls.Groups), "recs/group")
		}
		b.ReportMetric(256, "facts/op")
	})
}

// BenchmarkStoreConcurrentMixed hammers the striped tables from all
// procs at once — measurement puts, offer transitions and indexed
// queries — the contention profile the seed's single store-wide mutex
// serialized.
func BenchmarkStoreConcurrentMixed(b *testing.B) {
	st := benchStoreFacts(b, 50000)
	for id := flexoffer.ID(1); id <= 512; id++ {
		if err := st.PutOffer(store.OfferRecord{Offer: benchCycleOffer(id), Owner: workload.MeasurementActor(int(id) % 128), State: store.OfferAccepted}); err != nil {
			b.Fatal(err)
		}
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		worker := int(seq.Add(1))
		actor := workload.MeasurementActor(worker % 128)
		slot := flexoffer.Time(1 << 20)
		i := 0
		for pb.Next() {
			switch i % 4 {
			case 0:
				if err := st.PutMeasurement(store.Measurement{Actor: actor, EnergyType: "demand", Slot: slot, KWh: 1}); err != nil {
					b.Error(err)
					return
				}
				slot++
			case 1:
				st.Measurements(store.MeasurementFilter{Actor: actor, EnergyType: "demand", FromSlot: 0, ToSlot: 64})
			case 2:
				id := flexoffer.ID(worker*31%512 + 1)
				if _, err := st.UpdateOffer(id, func(r *store.OfferRecord) { r.State = store.OfferAccepted }); err != nil {
					b.Error(err)
					return
				}
			case 3:
				st.CountOffersByState()
			}
			i++
		}
	})
}

// BenchmarkStoreSnapshotUnderLoad measures Snapshot() of a 100k-fact
// durable store while a background writer keeps appending; the
// "writes_during" metric counts the writer's committed puts per
// snapshot — zero would mean the snapshot still blocks the store.
func BenchmarkStoreSnapshotUnderLoad(b *testing.B) {
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.PutMeasurementsBatch(workload.GenerateMeasurements(workload.MeasurementConfig{Count: 100000, Actors: 128, Seed: 1})); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var writes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slot := flexoffer.Time(1 << 20)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.PutMeasurement(store.Measurement{Actor: "bg", EnergyType: "demand", Slot: slot, KWh: 1}); err != nil {
				b.Error(err)
				return
			}
			writes.Add(1)
			slot++
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(writes.Load())/float64(b.N), "writes_during")
}

// --- scheduling-cycle benchmarks (snapshot/plan/commit/deliver) -------

func benchCycleOffer(id flexoffer.ID) *flexoffer.FlexOffer {
	p := make([]flexoffer.Slice, 4)
	for i := range p {
		p[i] = flexoffer.Slice{EnergyMin: 0, EnergyMax: 5}
	}
	return &flexoffer.FlexOffer{ID: id, EarliestStart: 40, LatestStart: 56, AssignBefore: 32, Profile: p}
}

// BenchmarkCycleDeliveryFanOut measures a scheduling cycle's deliver
// phase against a slow transport: with the bounded fan-out the wall
// time is governed by the slowest prosumer, not the sum over prosumers
// (limit=1 reproduces the old serialized behaviour as the baseline;
// the "deliver/slowest" metric is ~1 when fanned out, ~#owners when
// serialized).
func BenchmarkCycleDeliveryFanOut(b *testing.B) {
	const owners = 16
	const delay = 2 * time.Millisecond
	for _, limit := range []int{1, owners} {
		b.Run(fmt.Sprintf("limit%d", limit), func(b *testing.B) {
			bus := comm.NewBus()
			brp, err := core.NewNode(core.Config{
				Name: "brp1", Role: store.RoleBRP,
				Transport:   comm.Latency(bus, delay),
				AggParams:   agg.ParamsP3,
				SchedOpts:   sched.Options{MaxIterations: 1, Seed: 1},
				NotifyLimit: limit,
			})
			if err != nil {
				b.Fatal(err)
			}
			bus.Register("brp1", brp.Handler())
			for i := 0; i < owners; i++ {
				bus.Register(fmt.Sprintf("p%d", i), func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
					return nil, nil
				})
			}
			var id flexoffer.ID
			var deliver time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < owners; j++ {
					id++
					if d := brp.AcceptOffer(benchCycleOffer(id), fmt.Sprintf("p%d", j)); !d.Accept {
						b.Fatalf("offer rejected: %s", d.Reason)
					}
				}
				b.StartTimer()
				rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if rep.NotifyFailures != 0 {
					b.Fatalf("notify failures: %d", rep.NotifyFailures)
				}
				deliver = rep.DeliveryTime
			}
			b.ReportMetric(float64(deliver)/float64(time.Millisecond), "deliver_ms")
			b.ReportMetric(float64(deliver)/float64(delay), "deliver/slowest")
		})
	}
}

// BenchmarkIntakeDuringSlowDelivery measures AcceptOffer latency while
// scheduling cycles deliver over a slow transport in the background:
// ns/op is the intake latency, which must not queue behind the deliver
// phase (it would be milliseconds per offer if it did).
func BenchmarkIntakeDuringSlowDelivery(b *testing.B) {
	const owners = 8
	bus := comm.NewBus()
	brp, err := core.NewNode(core.Config{
		Name: "brp1", Role: store.RoleBRP,
		Transport: comm.Latency(bus, time.Millisecond),
		AggParams: agg.ParamsP3,
		SchedOpts: sched.Options{MaxIterations: 1, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	bus.Register("brp1", brp.Handler())
	for i := 0; i < owners; i++ {
		bus.Register(fmt.Sprintf("p%d", i), func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
			return nil, nil
		})
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rep, err := brp.RunSchedulingCycle(context.Background(), 0, nil, nil, nil)
			if err != nil {
				b.Error(err)
				return
			}
			if rep.Aggregates == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	var id flexoffer.ID = 1 << 20 // clear of any cycle-scheduled ids
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id++
		brp.AcceptOffer(benchCycleOffer(id), fmt.Sprintf("p%d", i%owners))
	}
	b.StopTimer()
	close(stop)
	<-done
}

// --- TCP transport benchmarks -----------------------------------------

// BenchmarkTCPFanOut measures N concurrent requests against a
// slow-handler TCP server through one TCPClient. The serial sub-bench
// issues them back to back — the behaviour the seed's client mutex
// forced on every caller — and takes ≈ N×delay; the concurrent
// sub-bench overlaps them over the pooled, Seq-pipelined connections
// and takes ≈ delay ("x_slowest" ≈ 1, versus ≈ N serialized). The
// one-dest sub-benches pipeline into a single server; many-dest spreads
// the same requests over 4 servers.
func BenchmarkTCPFanOut(b *testing.B) {
	const requests = 16
	const delay = 5 * time.Millisecond
	handler := func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		reply, err := comm.NewEnvelope(comm.MsgPong, env.To, env.From, nil)
		return &reply, err
	}
	newFabric := func(b *testing.B, dests int) (*comm.TCPClient, []string) {
		b.Helper()
		client := comm.NewTCPClient("brp")
		b.Cleanup(func() { client.Close() })
		names := make([]string, dests)
		for i := range names {
			srv, err := comm.ListenTCP("127.0.0.1:0", handler)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			names[i] = fmt.Sprintf("p%d", i)
			client.SetRoute(names[i], srv.Addr())
		}
		return client, names
	}

	for _, tc := range []struct {
		name  string
		dests int
	}{{"one-dest", 1}, {"many-dest", 4}} {
		client, names := newFabric(b, tc.dests)
		b.Run("serial/"+tc.name, func(b *testing.B) {
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				for j := 0; j < requests; j++ {
					env, _ := comm.NewEnvelope(comm.MsgPing, "brp", names[j%tc.dests], nil)
					if _, err := client.Request(context.Background(), names[j%tc.dests], env); err != nil {
						b.Fatal(err)
					}
				}
				wall = time.Since(t0)
			}
			b.ReportMetric(float64(wall)/float64(time.Millisecond), "wall_ms")
			b.ReportMetric(float64(wall)/float64(delay), "x_slowest")
		})
		b.Run("concurrent/"+tc.name, func(b *testing.B) {
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				var wg sync.WaitGroup
				errs := make([]error, requests)
				for j := 0; j < requests; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						to := names[j%tc.dests]
						env, _ := comm.NewEnvelope(comm.MsgPing, "brp", to, nil)
						_, errs[j] = client.Request(context.Background(), to, env)
					}(j)
				}
				wg.Wait()
				wall = time.Since(t0)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(wall)/float64(time.Millisecond), "wall_ms")
			b.ReportMetric(float64(wall)/float64(delay), "x_slowest")
			st := client.Stats()
			b.ReportMetric(float64(st.Dials), "dials")
		})
	}
}

// BenchmarkTCPFrameThroughput measures raw request/reply throughput of
// the framing layer over one pipelined connection — allocs/op shows the
// effect of the pooled encode buffers and reusable read scratch.
func BenchmarkTCPFrameThroughput(b *testing.B) {
	srv, err := comm.ListenTCP("127.0.0.1:0", func(ctx context.Context, env comm.Envelope) (*comm.Envelope, error) {
		reply, err := comm.NewEnvelope(comm.MsgPong, env.To, env.From, nil)
		return &reply, err
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := comm.NewTCPClient("p1", comm.WithPoolSize(1))
	defer client.Close()
	client.SetRoute("srv", srv.Addr())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			env, _ := comm.NewEnvelope(comm.MsgPing, "p1", "srv", nil)
			if _, err := client.Request(context.Background(), "srv", env); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
